//! SL007 — nondeterministic-iteration: hash-map/set iteration must not
//! escape in hash order. The repo's load-bearing claim is bit-identity of
//! mining output across every execution strategy; std's `RandomState`
//! reorders per *process* and even the vendored deterministic `FxHashMap`
//! reorders under insertion-order changes (different partitioning, worker
//! count, batch size). Any `HashMap`/`HashSet` iteration whose results
//! reach a returned collection, JSON output, or accumulated state without
//! an intervening sort or `BTreeMap` is a determinism bug waiting for a
//! strategy change to surface it.
//!
//! Detection: [`crate::resolve`] marks *hash-typed names* (fields,
//! locals, params whose type or initializer is `HashMap`/`HashSet`/
//! `FxHashMap`/`FxHashSet`, incl. local `type` aliases). A flagged site
//! is an iteration of such a name — `.iter()`, `.keys()`, `.values()`,
//! `.drain()`, `for … in &map` — unless the consumption is order-safe:
//!
//! * terminal reductions: `count`, `sum`, `product`, `all`, `any`,
//!   `max*`, `min*` (order-free by algebra);
//! * `collect()` into an unordered or sorted container (turbofish or
//!   binding annotation naming `HashMap`/`HashSet`/`FxHash*`/`BTree*`),
//!   or into a binding that is later `.sort*()`ed in the same block;
//! * `for` bodies that only merge into maps/counters — flagged only when
//!   the body appends to order-sensitive sinks (`push`, `extend`,
//!   `append`, `push_str`, `write!`/`writeln!`).
//!
//! Known gap, on purpose: floating-point `+=` accumulation over hash
//! iteration is order-sensitive but indistinguishable from integer
//! counting at the token level; the mining-state accumulators were moved
//! to `BTreeMap` instead (see crates/core/src/streaming.rs).
//!
//! Scope: `crates/core/src/`, `crates/dataflow/src/`, `src/` — where
//! bit-identity is the contract. Bench/baseline harnesses are exempt.

use super::{finding_at, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::locks;
use crate::resolve::FileSymbols;
use crate::syntax::SourceFile;

/// See module docs.
pub struct NondeterministicIteration;

/// Methods that yield a hash-ordered iterator from a hash container.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Receiver-producing methods the backward chain walk sees through
/// (`catalog.read().keys()` iterates `catalog`).
const PASSTHROUGH: &[&str] = &[
    "read",
    "write",
    "lock",
    "unwrap",
    "expect",
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
    "clone",
];

/// Iterator adapters that preserve the (hash) order — the walk continues
/// through them to the chain's real consumer.
const TRANSPARENT: &[&str] = &[
    "map",
    "filter",
    "cloned",
    "copied",
    "flat_map",
    "filter_map",
    "enumerate",
    "zip",
    "chain",
    "take",
    "skip",
    "step_by",
    "inspect",
    "flatten",
    "by_ref",
];

/// Order-free terminal reductions.
const SAFE_TERMINAL: &[&str] = &[
    "count",
    "sum",
    "product",
    "all",
    "any",
    "max",
    "min",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
];

/// Collect destinations whose content is independent of input order:
/// unordered (re-hashed) or sorted containers.
const ORDER_FREE_DEST: &[&str] = &[
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
];

/// Order-sensitive sinks inside a `for` body.
const BODY_SINKS: &[&str] = &["push", "extend", "append", "push_str"];

impl Rule for NondeterministicIteration {
    fn code(&self) -> &'static str {
        "SL007"
    }

    fn describe(&self) -> &'static str {
        "no HashMap/HashSet iteration escaping unordered into results, JSON, or mining state"
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/core/src/")
            || rel_path.starts_with("crates/dataflow/src/")
            || rel_path.starts_with("src/")
    }

    fn check(&self, file: &SourceFile, sym: &FileSymbols, out: &mut Vec<Finding>) {
        // Method-chain iterations: `name.iter()`, `name.read().keys()`, …
        for i in 0..file.sig.len() {
            if !matches!(file.sig_kind(i), Some(TokenKind::Ident))
                || !ITER_METHODS.contains(&file.sig_text(i))
                || i == 0
                || file.sig_text(i - 1) != "."
                || file.sig_text(i + 1) != "("
            {
                continue;
            }
            if file.in_test(file.sig_offset(i)) {
                continue;
            }
            let Some(base) = chain_base(file, i) else {
                continue;
            };
            let name = file.sig_text(base);
            if !sym.is_hash_name(name) {
                continue;
            }
            if chain_is_order_safe(file, sym, i) {
                continue;
            }
            finding_at(
                file,
                i,
                self.code(),
                format!(
                    "iteration over hash-ordered `{name}` escapes in nondeterministic \
                     order; sort the result, collect into a BTreeMap/BTreeSet, or make \
                     `{name}` a BTreeMap"
                ),
                out,
            );
        }
        // Bare `for … in &name` loops (no method call in the header).
        for l in &file.loops {
            if !file.sig_is_ident(l.keyword, "for") || file.in_test(file.sig_offset(l.keyword)) {
                continue;
            }
            let last = l.header.1 - 1;
            if !matches!(file.sig_kind(last), Some(TokenKind::Ident)) {
                continue;
            }
            let name = file.sig_text(last);
            if !sym.is_hash_name(name) || for_body_is_order_safe(file, l.body) {
                continue;
            }
            finding_at(
                file,
                last,
                self.code(),
                format!(
                    "`for` over hash-ordered `{name}` feeds an order-sensitive sink; \
                     iterate a sorted snapshot or make `{name}` a BTreeMap"
                ),
                out,
            );
        }
    }
}

/// Walk a method chain backward from the iteration method at `i` to the
/// base identifier, seeing through receiver-producing passthroughs.
fn chain_base(file: &SourceFile, i: usize) -> Option<usize> {
    let mut p = i.checked_sub(2)?;
    loop {
        match file.sig_text(p) {
            ")" => {
                let open = file.matching.get(p).copied().flatten()?;
                if open < 2
                    || !PASSTHROUGH.contains(&file.sig_text(open - 1))
                    || file.sig_text(open - 2) != "."
                {
                    return None;
                }
                p = open.checked_sub(3)?;
            }
            _ => {
                return if matches!(
                    file.sig_kind(p),
                    Some(TokenKind::Ident | TokenKind::RawIdent)
                ) {
                    Some(p)
                } else {
                    None
                };
            }
        }
    }
}

/// Forward-classify the chain starting at the iteration method: is every
/// path the results take order-free?
fn chain_is_order_safe(file: &SourceFile, sym: &FileSymbols, i: usize) -> bool {
    let mut close = match file.matching.get(i + 1).copied().flatten() {
        Some(c) => c,
        None => return false,
    };
    loop {
        if file.sig_text(close + 1) != "." {
            // Chain ends without a terminal: a `for`-header iteration is
            // judged by its loop body; anything else escapes raw.
            if let Some(l) = file
                .loops
                .iter()
                .find(|l| l.header.0 <= i && i < l.header.1)
            {
                return for_body_is_order_safe(file, l.body);
            }
            return false;
        }
        let m = file.sig_text(close + 2);
        if SAFE_TERMINAL.contains(&m) {
            return true;
        }
        // Dispatch `collect` before the paren check: a turbofish
        // (`collect::<Dest<_>>()`) puts `::` where the `(` would be, and
        // `collect_is_order_safe` reads the turbofish itself.
        if m == "collect" {
            return collect_is_order_safe(file, sym, i, close + 2);
        }
        if file.sig_text(close + 3) != "(" {
            return false;
        }
        if TRANSPARENT.contains(&m) {
            close = match file.matching.get(close + 3).copied().flatten() {
                Some(c) => c,
                None => return false,
            };
            continue;
        }
        return false;
    }
}

/// Is a `collect()` ending the chain order-free? Yes when the turbofish
/// or the binding annotation names an unordered/sorted container, when
/// the binding is itself hash-typed (resolve tracked the annotation), or
/// when the binding is `.sort*()`ed later in the enclosing block.
fn collect_is_order_safe(
    file: &SourceFile,
    sym: &FileSymbols,
    iter_idx: usize,
    collect_idx: usize,
) -> bool {
    // `collect::<Dest<…>>()`
    if file.sig_text(collect_idx + 1) == ":" && file.sig_text(collect_idx + 2) == ":" {
        for j in collect_idx + 3..(collect_idx + 12).min(file.sig.len()) {
            let t = file.sig_text(j);
            if t == "(" {
                break;
            }
            if ORDER_FREE_DEST.contains(&t) {
                return true;
            }
        }
    }
    // `let [mut] name [: Dest<…>] = …collect…;`
    let stmt = locks::statement_start(file, iter_idx);
    if !file.sig_is_ident(stmt, "let") {
        return false;
    }
    let mut name_idx = stmt + 1;
    if file.sig_text(name_idx) == "mut" {
        name_idx += 1;
    }
    if !matches!(file.sig_kind(name_idx), Some(TokenKind::Ident)) {
        return false;
    }
    let name = file.sig_text(name_idx);
    if sym.is_hash_name(name) {
        return true; // destination is an unordered container
    }
    if file.sig_text(name_idx + 1) == ":" {
        for j in name_idx + 2..(name_idx + 14).min(file.sig.len()) {
            let t = file.sig_text(j);
            if t == "=" || t == ";" {
                break;
            }
            if t == "BTreeMap" || t == "BTreeSet" {
                return true;
            }
        }
    }
    // Later `name.sort*()` in the same block.
    let stmt_end = locks::forward_to(file, iter_idx, ";");
    let block_end = locks::enclosing_block_close(file, iter_idx);
    for j in stmt_end..block_end {
        if file.sig_is_ident(j, name)
            && file.sig_text(j + 1) == "."
            && file.sig_text(j + 2).starts_with("sort")
        {
            return true;
        }
    }
    false
}

/// A `for` body is order-safe unless it appends to an order-sensitive
/// sink (`push`/`extend`/`append`/`push_str`, `write!`/`writeln!`).
fn for_body_is_order_safe(file: &SourceFile, body: (usize, usize)) -> bool {
    for j in body.0 + 1..body.1 {
        if !matches!(file.sig_kind(j), Some(TokenKind::Ident)) {
            continue;
        }
        let t = file.sig_text(j);
        if BODY_SINKS.contains(&t) && file.sig_text(j + 1) == "(" {
            return false;
        }
        if (t == "write" || t == "writeln") && file.sig_text(j + 1) == "!" {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::check_sources;

    fn lint(src: &str) -> Vec<Finding> {
        check_sources(&[("crates/core/src/x.rs".to_string(), src.to_string())])
            .findings
            .into_iter()
            .filter(|f| f.rule == "SL007")
            .collect()
    }

    #[test]
    fn collect_to_vec_flagged_sorted_or_unordered_ok() {
        let flagged = lint(
            "fn f(m: FxHashMap<u64, u32>) -> Vec<u64> {\n    let out: Vec<u64> = m.keys().copied().collect();\n    out\n}\n",
        );
        assert_eq!(flagged.len(), 1, "{flagged:#?}");
        let sorted = lint(
            "fn f(m: FxHashMap<u64, u32>) -> Vec<u64> {\n    let mut out: Vec<u64> = m.keys().copied().collect();\n    out.sort_unstable();\n    out\n}\n",
        );
        assert!(sorted.is_empty(), "{sorted:#?}");
        let rehashed = lint(
            "fn f(m: FxHashMap<u64, u32>) -> FxHashSet<u64> {\n    let out: FxHashSet<u64> = m.keys().copied().collect();\n    out\n}\n",
        );
        assert!(rehashed.is_empty(), "{rehashed:#?}");
    }

    #[test]
    fn reductions_and_passthrough_receivers() {
        let ok = lint("fn f(m: HashMap<u64, u32>) -> usize { m.values().count() }\n");
        assert!(ok.is_empty(), "{ok:#?}");
        let through_guard = lint(
            "struct S { catalog: RwLock<HashMap<String, u32>> }\n\
             impl S { fn t(&self) -> Vec<String> { self.catalog.read().keys().cloned().collect() } }\n",
        );
        assert_eq!(through_guard.len(), 1, "{through_guard:#?}");
    }

    #[test]
    fn for_bodies_judged_by_sink() {
        let merging = lint(
            "fn f(m: HashMap<u64, u32>, out: &mut BTreeMap<u64, u32>) {\n    for (k, v) in &m { out.insert(*k, *v); }\n}\n",
        );
        assert!(merging.is_empty(), "{merging:#?}");
        let pushing = lint(
            "fn f(m: HashMap<u64, u32>) -> Vec<u64> {\n    let mut out = Vec::new();\n    for (k, _) in &m { out.push(*k); }\n    out\n}\n",
        );
        assert_eq!(pushing.len(), 1, "{pushing:#?}");
    }
}
