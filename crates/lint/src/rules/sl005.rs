//! SL005 — unsafe-forbidden: no `unsafe` anywhere in the workspace's own
//! code. The mining engine gets its performance from layout and algorithm
//! choices (columnar frames, packed rule codes, zero-copy views), not
//! from `unsafe`; the vendored shims that genuinely need it live outside
//! the linted tree. The allowlist below is intentionally empty — adding
//! an entry is a reviewed decision, not a pragma.

use super::{finding_at, Rule};
use crate::diag::Finding;
use crate::resolve::FileSymbols;
use crate::syntax::SourceFile;

/// See module docs.
pub struct UnsafeForbidden;

/// Workspace-relative paths permitted to contain `unsafe`. Empty today;
/// extend only with review (and say why here).
const ALLOWLIST: &[&str] = &[];

impl Rule for UnsafeForbidden {
    fn code(&self) -> &'static str {
        "SL005"
    }

    fn describe(&self) -> &'static str {
        "no `unsafe` outside the (currently empty) allowlist"
    }

    fn applies(&self, rel_path: &str) -> bool {
        !ALLOWLIST.contains(&rel_path)
    }

    fn check(&self, file: &SourceFile, _sym: &FileSymbols, out: &mut Vec<Finding>) {
        for i in 0..file.sig.len() {
            if file.sig_is_ident(i, "unsafe") {
                finding_at(
                    file,
                    i,
                    self.code(),
                    "`unsafe` is forbidden in workspace code; if it is truly \
                     unavoidable, add the file to the SL005 allowlist with review"
                        .to_string(),
                    out,
                );
            }
        }
    }
}
