//! SL002 — cancellation-poll: data-scale loops in the hot mining modules
//! must observe cancellation. The exact bug class PR 6 patched: the sweep
//! originally polled per *emitted pair*, so a stretch of rows emitting
//! nothing could stall cancellation unboundedly. A loop whose header
//! iterates a whole row/partition/fold/block collection must contain a
//! `CancellationToken` poll or a work-unit-counter poll (`tick`) somewhere
//! in its body — directly or through a nested loop.
//!
//! Scope: `core::sweep`, `core::scaling`, `core::rct`, `core::candidates`
//! — the modules on the per-iteration data path. The heuristic is the
//! header identifier set {`rows`, `partitions`, `folds`, `blocks`}:
//! iterating one of those collections is a scan whose length tracks the
//! data, not a bounded bookkeeping loop.

use super::{finding_at, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::resolve::FileSymbols;
use crate::syntax::SourceFile;

/// See module docs.
pub struct CancellationPoll;

const HOT_MODULES: &[&str] = &[
    "crates/core/src/sweep.rs",
    "crates/core/src/scaling.rs",
    "crates/core/src/rct.rs",
    "crates/core/src/candidates.rs",
];

/// Iterating one of these collections marks a data-scale loop.
const DATA_COLLECTIONS: &[&str] = &["rows", "partitions", "folds", "blocks"];

/// Any identifier containing "cancel", or equal to one of these, counts
/// as a poll: `tick` is the sweep's work-unit counter, `poll`-named
/// helpers poll by construction, and `CANCEL_POLL_ROWS` is matched by the
/// contains-"cancel" test (case-insensitive).
const POLL_IDENTS: &[&str] = &["tick", "poll"];

fn is_poll_ident(text: &str) -> bool {
    text.to_ascii_lowercase().contains("cancel") || POLL_IDENTS.contains(&text)
}

impl Rule for CancellationPoll {
    fn code(&self) -> &'static str {
        "SL002"
    }

    fn describe(&self) -> &'static str {
        "row/partition/fold-scale loops in core::{sweep,scaling,rct,candidates} must poll cancellation"
    }

    fn applies(&self, rel_path: &str) -> bool {
        HOT_MODULES.contains(&rel_path)
    }

    fn check(&self, file: &SourceFile, _sym: &FileSymbols, out: &mut Vec<Finding>) {
        for l in &file.loops {
            if file.in_test(file.sig_offset(l.keyword)) {
                continue;
            }
            let Some(collection) = (l.header.0..l.header.1).find_map(|h| {
                let t = file.sig_text(h);
                if file.sig_kind(h) == Some(TokenKind::Ident) && DATA_COLLECTIONS.contains(&t) {
                    Some(t.to_string())
                } else {
                    None
                }
            }) else {
                continue;
            };
            let polls = (l.body.0 + 1..l.body.1).any(|b| {
                file.sig_kind(b) == Some(TokenKind::Ident) && is_poll_ident(file.sig_text(b))
            });
            if !polls {
                finding_at(
                    file,
                    l.keyword,
                    self.code(),
                    format!(
                        "loop over `{collection}` has no cancellation poll in its body; \
                         poll a CancellationToken (or a CANCEL_POLL_ROWS-style work-unit \
                         counter) so cancellation latency stays bounded"
                    ),
                    out,
                );
            }
        }
    }
}
