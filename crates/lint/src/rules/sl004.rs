//! SL004 — accept-loop purity: the listener accept loop in `net::server`
//! must stay non-blocking between `accept()` calls. Every millisecond the
//! accept thread spends inside service work is a millisecond the kernel
//! backlog grows; under load that turns into connect timeouts *before*
//! admission control ever sees the request. The loop may accept, do
//! `try_`-prefixed admission calls, hand the socket to a worker, and log
//! — nothing that can block (service submits, waits, channel receives,
//! locks, socket IO, mining entry points).

use super::{finding_at, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::resolve::FileSymbols;
use crate::syntax::SourceFile;

/// See module docs.
pub struct AcceptLoopPurity;

/// Calls forbidden inside an accept loop. `try_submit`/`try_*` variants
/// are different identifiers and stay allowed by construction.
const FORBIDDEN: &[&str] = &[
    "submit",
    "wait",
    "wait_timeout",
    "recv",
    "recv_timeout",
    "join",
    "sleep",
    "lock",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "mine",
    "mine_more",
    "execute",
    "ingest",
    "handle",
];

impl Rule for AcceptLoopPurity {
    fn code(&self) -> &'static str {
        "SL004"
    }

    fn describe(&self) -> &'static str {
        "the net::server accept loop must not call blocking service operations"
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path == "src/net/server.rs"
    }

    fn check(&self, file: &SourceFile, _sym: &FileSymbols, out: &mut Vec<Finding>) {
        let spawned = super::spawn_arg_spans(file);
        for l in &file.loops {
            if file.in_test(file.sig_offset(l.keyword)) {
                continue;
            }
            let body = l.body.0 + 1..l.body.1;
            let is_accept_loop = body
                .clone()
                .any(|j| file.sig_is_ident(j, "accept") && file.sig_text(j + 1) == "(");
            if !is_accept_loop {
                continue;
            }
            for j in body {
                if file.sig_kind(j) == Some(TokenKind::Ident)
                    && FORBIDDEN.contains(&file.sig_text(j))
                    && file.sig_text(j + 1) == "("
                    && !super::in_spans(j, &spawned)
                {
                    finding_at(
                        file,
                        j,
                        self.code(),
                        format!(
                            "`{}(…)` inside the accept loop can block the accept \
                             thread; use a `try_`-variant or move the work to a \
                             connection thread",
                            file.sig_text(j)
                        ),
                        out,
                    );
                }
            }
        }
    }
}
