//! Lightweight structural layer over the token stream: line/column
//! mapping, a brace/paren match map, `#[cfg(test)]`/`#[test]` item spans,
//! `fn` signatures, loop headers/bodies, and `// lint:allow(SLNNN) — why`
//! pragma parsing. No AST — rules work on significant-token adjacency
//! plus these spans, which is exactly enough for the invariants they
//! check and keeps the analyzer a single pass per file.

use crate::lexer::{lex, Token, TokenKind};

/// A parsed suppression pragma: `// lint:allow(SL001, SL003) — reason`.
///
/// Scoping follows the retired awk gate: a pragma trailing code on its own
/// line blesses that line; a pragma alone on a line blesses the line
/// directly below. Nothing else — a pragma can never leak onto distant
/// code through intervening comment blocks.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Uppercased rule codes listed in the parens (e.g. `"SL001"`).
    pub codes: Vec<String>,
    /// Codes that do not name a known rule (reported as SL000).
    pub unknown_codes: Vec<String>,
    /// Whether a non-empty `— reason` (or `- reason`) follows the parens.
    pub has_reason: bool,
    /// The reason text after the dash (empty when `has_reason` is false).
    pub reason: String,
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// 1-based byte column of the comment token.
    pub col: u32,
    /// 1-based line whose findings this pragma suppresses.
    pub blessed_line: u32,
}

/// A `fn` item: name, parameter-list span and (for non-trait-decl fns)
/// body span, all as indices into the significant-token list.
#[derive(Debug, Clone, Copy)]
pub struct FnInfo {
    /// Significant-token index of the `fn` name.
    pub name: usize,
    /// Significant-token range `(open_paren, close_paren)` of the params.
    pub params: (usize, usize),
    /// Significant-token range `(open_brace, close_brace)` of the body,
    /// when the fn has one.
    pub body: Option<(usize, usize)>,
}

/// A `for`/`while`/`loop` with its header and body spans (significant-
/// token indices). `impl Trait for Type` and `for<'a>` binders are not
/// loops and are excluded.
#[derive(Debug, Clone, Copy)]
pub struct LoopInfo {
    /// Significant-token index of the loop keyword.
    pub keyword: usize,
    /// Significant tokens strictly between the keyword and the body brace.
    pub header: (usize, usize),
    /// Significant-token range `(open_brace, close_brace)` of the body.
    pub body: (usize, usize),
}

/// One fully lexed and structurally indexed source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// The file contents.
    pub src: String,
    /// Every token, tiling `src`.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant (non-whitespace, non-comment)
    /// tokens.
    pub sig: Vec<usize>,
    /// For each *significant-token index*, the significant-token index of
    /// its matching bracket (for `(` `)` `[` `]` `{` `}`), if balanced.
    pub matching: Vec<Option<usize>>,
    /// Byte spans of items annotated `#[cfg(test)]` / `#[test]`.
    pub test_spans: Vec<(usize, usize)>,
    /// Parsed `lint:allow` pragmas.
    pub pragmas: Vec<Pragma>,
    /// Every `fn` item found.
    pub fns: Vec<FnInfo>,
    /// Every loop found.
    pub loops: Vec<LoopInfo>,
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Lex and index `src`.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace
                        | TokenKind::LineComment { .. }
                        | TokenKind::BlockComment { .. }
                )
            })
            .map(|(i, _)| i)
            .collect();
        let mut file = SourceFile {
            rel_path: rel_path.replace('\\', "/"),
            src: src.to_string(),
            tokens,
            sig,
            matching: Vec::new(),
            test_spans: Vec::new(),
            pragmas: Vec::new(),
            fns: Vec::new(),
            loops: Vec::new(),
            line_starts,
        };
        file.matching = file.match_brackets();
        file.test_spans = file.find_test_spans();
        file.pragmas = file.find_pragmas();
        file.fns = file.find_fns();
        file.loops = file.find_loops();
        file
    }

    /// 1-based `(line, column)` of a byte offset (column counts bytes).
    pub fn pos(&self, offset: usize) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let col = offset.saturating_sub(*self.line_starts.get(line).unwrap_or(&0)) + 1;
        (line as u32 + 1, col as u32)
    }

    /// The token behind significant index `i`.
    pub fn sig_tok(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).and_then(|&ti| self.tokens.get(ti))
    }

    /// Text of significant token `i` (empty when out of range).
    pub fn sig_text(&self, i: usize) -> &str {
        self.sig_tok(i).map(|t| t.text(&self.src)).unwrap_or("")
    }

    /// Kind of significant token `i`.
    pub fn sig_kind(&self, i: usize) -> Option<TokenKind> {
        self.sig_tok(i).map(|t| t.kind)
    }

    /// Whether significant token `i` is an identifier with this exact text.
    pub fn sig_is_ident(&self, i: usize, text: &str) -> bool {
        matches!(self.sig_kind(i), Some(TokenKind::Ident)) && self.sig_text(i) == text
    }

    /// Byte offset of significant token `i` (0 when out of range).
    pub fn sig_offset(&self, i: usize) -> usize {
        self.sig_tok(i).map(|t| t.start).unwrap_or(0)
    }

    /// True when the byte offset falls inside a `#[cfg(test)]`/`#[test]`
    /// item.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    fn match_brackets(&self) -> Vec<Option<usize>> {
        let mut matching = vec![None; self.sig.len()];
        let mut stack: Vec<(usize, &str)> = Vec::new();
        for i in 0..self.sig.len() {
            if self.sig_kind(i) != Some(TokenKind::Punct) {
                continue;
            }
            match self.sig_text(i) {
                open @ ("(" | "[" | "{") => stack.push((i, open)),
                ")" | "]" | "}" => {
                    let want = match self.sig_text(i) {
                        ")" => "(",
                        "]" => "[",
                        _ => "{",
                    };
                    // Pop unbalanced leftovers so one stray bracket cannot
                    // derail the rest of the file.
                    while let Some((j, open)) = stack.pop() {
                        if open == want {
                            matching[i] = Some(j);
                            matching[j] = Some(i);
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        matching
    }

    /// Byte spans of items carrying a test attribute: from `#[…test…]` we
    /// skip any further attributes, then span the next braced body (or
    /// nothing for `;`-terminated items).
    fn find_test_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut i = 0;
        while i < self.sig.len() {
            if self.sig_text(i) == "#" && self.sig_text(i + 1) == "[" {
                let Some(close) = self.matching.get(i + 1).copied().flatten() else {
                    i += 1;
                    continue;
                };
                let is_test_attr = (i + 2..close).any(|j| self.sig_is_ident(j, "test"));
                if !is_test_attr {
                    i = close + 1;
                    continue;
                }
                // Skip stacked attributes after the test attribute.
                let mut j = close + 1;
                while self.sig_text(j) == "#" && self.sig_text(j + 1) == "[" {
                    match self.matching.get(j + 1).copied().flatten() {
                        Some(c) => j = c + 1,
                        None => break,
                    }
                }
                // Find the item's body brace before any `;`.
                let mut body = None;
                let mut k = j;
                while k < self.sig.len() {
                    let text = self.sig_text(k);
                    if text == "{" {
                        body = self.matching.get(k).copied().flatten().map(|c| (k, c));
                        break;
                    }
                    if text == ";" {
                        break;
                    }
                    k += 1;
                }
                if let Some((open, closeb)) = body {
                    let start = self.sig_offset(open);
                    let end = self
                        .sig_tok(closeb)
                        .map(|t| t.end)
                        .unwrap_or(self.src.len());
                    spans.push((start, end));
                    i = closeb + 1;
                    continue;
                }
                i = k + 1;
                continue;
            }
            i += 1;
        }
        spans
    }

    fn find_pragmas(&self) -> Vec<Pragma> {
        let mut pragmas = Vec::new();
        for tok in &self.tokens {
            // Doc comments are documentation (and may *mention* pragma
            // syntax); only plain `//` comments carry pragmas.
            if !matches!(tok.kind, TokenKind::LineComment { doc: false }) {
                continue;
            }
            let text = tok.text(&self.src);
            let Some(at) = text.find("lint:allow(") else {
                continue;
            };
            let after_open = &text[at + "lint:allow(".len()..];
            let Some(close) = after_open.find(')') else {
                continue;
            };
            let mut codes = Vec::new();
            let mut unknown_codes = Vec::new();
            for raw in after_open[..close].split(',') {
                let code = raw.trim().to_ascii_uppercase();
                if code.is_empty() {
                    continue;
                }
                if crate::rules::known_rule(&code) {
                    codes.push(code);
                } else {
                    unknown_codes.push(code);
                }
            }
            let tail = after_open[close + 1..].trim_start();
            let reason = tail.trim_start_matches(['—', '-', ' ']).trim().to_string();
            let has_reason = (tail.starts_with('—') || tail.starts_with('-')) && reason.len() >= 3;
            let (line, col) = self.pos(tok.start);
            // Same-line pragma when code precedes the comment on its line;
            // otherwise the pragma blesses the next line.
            let line_start = *self.line_starts.get(line as usize - 1).unwrap_or(&0);
            let code_before = self.sig.iter().any(|&ti| {
                let t = &self.tokens[ti];
                t.start >= line_start && t.end <= tok.start
            });
            let blessed_line = if code_before { line } else { line + 1 };
            pragmas.push(Pragma {
                codes,
                unknown_codes,
                has_reason,
                reason: if has_reason { reason } else { String::new() },
                line,
                col,
                blessed_line,
            });
        }
        pragmas
    }

    fn find_fns(&self) -> Vec<FnInfo> {
        let mut fns = Vec::new();
        for i in 0..self.sig.len() {
            if !self.sig_is_ident(i, "fn") {
                continue;
            }
            // `fn` name: the next ident (skipping nothing — Rust puts the
            // name right after, except in fn-pointer types `fn(..)` which
            // have no name and are skipped here).
            if !matches!(
                self.sig_kind(i + 1),
                Some(TokenKind::Ident | TokenKind::RawIdent)
            ) {
                continue;
            }
            let name = i + 1;
            // Scan to the parameter parens (over any generics).
            let mut j = name + 1;
            let mut params = None;
            while j < self.sig.len() {
                match self.sig_text(j) {
                    "(" => {
                        params = self.matching.get(j).copied().flatten().map(|c| (j, c));
                        break;
                    }
                    "{" | ";" => break,
                    _ => j += 1,
                }
            }
            let Some(params) = params else {
                continue;
            };
            // Body: first `{` before `;` after the params.
            let mut body = None;
            let mut k = params.1 + 1;
            while k < self.sig.len() {
                match self.sig_text(k) {
                    "{" => {
                        body = self.matching.get(k).copied().flatten().map(|c| (k, c));
                        break;
                    }
                    ";" => break,
                    _ => k += 1,
                }
            }
            fns.push(FnInfo { name, params, body });
        }
        fns
    }

    fn find_loops(&self) -> Vec<LoopInfo> {
        let mut loops = Vec::new();
        for i in 0..self.sig.len() {
            let kw = self.sig_text(i);
            if !(self.sig_is_ident(i, "for")
                || self.sig_is_ident(i, "while")
                || self.sig_is_ident(i, "loop"))
            {
                continue;
            }
            // `for<'a>` higher-ranked binders are not loops.
            if kw == "for" && self.sig_text(i + 1) == "<" {
                continue;
            }
            // Find the body `{` at bracket depth 0 relative to the keyword.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut open = None;
            while j < self.sig.len() {
                match self.sig_text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth <= 0 => {
                        open = Some(j);
                        break;
                    }
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    ";" if depth <= 0 => break, // not a loop after all
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = open else {
                continue;
            };
            let Some(close) = self.matching.get(open).copied().flatten() else {
                continue;
            };
            // `impl Trait for Type { … }`: a real for-loop header contains
            // a top-level `in`.
            if kw == "for" && !(i + 1..open).any(|h| self.sig_is_ident(h, "in")) {
                continue;
            }
            loops.push(LoopInfo {
                keyword: i,
                header: (i + 1, open),
                body: (open, close),
            });
        }
        loops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let f = SourceFile::parse("x.rs", "ab\ncde\nf");
        assert_eq!(f.pos(0), (1, 1));
        assert_eq!(f.pos(3), (2, 1));
        assert_eq!(f.pos(5), (2, 3));
        assert_eq!(f.pos(7), (3, 1));
    }

    #[test]
    fn cfg_test_mod_is_a_test_span_and_code_after_it_is_not() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        let tests_body = src.find("mod tests").unwrap() + 20;
        assert!(f.in_test(tests_body));
        assert!(!f.in_test(src.find("fn lib").unwrap()));
        // Unlike the retired awk gate, scanning resumes after the test mod.
        assert!(!f.in_test(src.find("fn after").unwrap()));
    }

    #[test]
    fn test_attribute_with_stacked_attrs_spans_the_fn_body() {
        let src = "#[test]\n#[ignore]\nfn t() { body(); }\nfn real() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.in_test(src.find("body").unwrap()));
        assert!(!f.in_test(src.find("fn real").unwrap()));
    }

    #[test]
    fn cfg_test_on_use_item_spans_nothing() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() { x(); }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test(src.find("x()").unwrap()));
    }

    #[test]
    fn pragma_same_line_vs_line_above() {
        let src =
            "foo(); // lint:allow(SL001) — same line\n// lint:allow(SL002) — line above\nbar();\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.pragmas.len(), 2);
        assert_eq!(f.pragmas[0].codes, vec!["SL001"]);
        assert_eq!(f.pragmas[0].blessed_line, 1);
        assert!(f.pragmas[0].has_reason);
        assert_eq!(f.pragmas[1].codes, vec!["SL002"]);
        assert_eq!(f.pragmas[1].blessed_line, 3);
    }

    #[test]
    fn pragma_without_reason_or_with_unknown_code_is_detected() {
        let src = "// lint:allow(SL001)\n// lint:allow(SL999) — made up\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.pragmas[0].has_reason);
        assert!(f.pragmas[1].has_reason);
        assert_eq!(f.pragmas[1].unknown_codes, vec!["SL999"]);
    }

    #[test]
    fn pragma_accepts_ascii_dash_and_multiple_codes() {
        let src = "// lint:allow(SL001, sl003) - both, ascii dash\nx();\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.pragmas[0].codes, vec!["SL001", "SL003"]);
        assert!(f.pragmas[0].has_reason);
        assert_eq!(f.pragmas[0].blessed_line, 2);
    }

    #[test]
    fn fns_capture_params_and_body() {
        let src = "fn a(x: u32) -> u32 { x }\ntrait T { fn decl(&self); }\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.sig_text(f.fns[0].name), "a");
        assert!(f.fns[0].body.is_some());
        assert_eq!(f.sig_text(f.fns[1].name), "decl");
        assert!(f.fns[1].body.is_none());
    }

    #[test]
    fn loops_found_and_impl_for_excluded() {
        let src = "impl Clone for X { fn clone(&self) -> X { for i in 0..n { poll(); } X } }\nfn g() { while ready { step(); } loop { break; } }\n";
        let f = SourceFile::parse("x.rs", src);
        let kws: Vec<&str> = f.loops.iter().map(|l| f.sig_text(l.keyword)).collect();
        assert_eq!(kws, vec!["for", "while", "loop"]);
        let for_loop = &f.loops[0];
        assert!((for_loop.header.0..for_loop.header.1).any(|h| f.sig_is_ident(h, "i")));
    }

    #[test]
    fn for_loop_header_with_method_calls_and_closures() {
        let src =
            "fn g() { for (i, row) in rows.iter().map(|r| f(r)).enumerate() { use_it(i, row); } }";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.loops.len(), 1);
        let l = &f.loops[0];
        assert!((l.header.0..l.header.1).any(|h| f.sig_is_ident(h, "rows")));
        assert!((l.body.0..l.body.1).any(|h| f.sig_is_ident(h, "use_it")));
    }

    #[test]
    fn brackets_match_through_nesting() {
        let src = "fn f() { a(b[c(d)]); }";
        let f = SourceFile::parse("x.rs", src);
        for i in 0..f.sig.len() {
            if let "(" | "[" | "{" = f.sig_text(i) {
                let m = f.matching[i].expect("balanced");
                assert_eq!(f.matching[m], Some(i));
            }
        }
    }
}
