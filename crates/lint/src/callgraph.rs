//! The workspace layer: per-file summaries, the intra-workspace call
//! graph, and the lock-order graph SL006 walks for cycles.
//!
//! A [`FileSummary`] is the *serializable* digest of one file — fn names,
//! impl types, return shapes, call sites, lock acquisitions with held
//! extents, and discard sites. It is everything the cross-file rules
//! need, and nothing tied to live token indices, so the incremental cache
//! can persist it and the workspace phase can run over a mix of freshly
//! analyzed and cached files.
//!
//! Resolution is name-based: a free call resolves when exactly one
//! workspace fn bears the name; a method call when exactly one impl
//! defines it; `Type::assoc(…)` prefers the impl match. Ambiguity means
//! *unresolved* (never a guess), so the graph under-approximates — the
//! right bias for a deadlock/determinism gate that must stay quiet on
//! clean code.
//!
//! Lock identity is `(file, receiver-field)` — `jobs` acquired anywhere
//! in `src/service.rs` is one lock, and a same-named field in another
//! file is a different one. Held-lock sets propagate through resolved
//! calls to a fixpoint, every propagation step recording provenance so a
//! cycle report can print the full witness chain
//! (`f holds A and calls g → g acquires B`).

use std::collections::{BTreeMap, BTreeSet};

use crate::jsonio::{self, n, obj, s, Value};
use crate::locks;
use crate::resolve::{self, Discard, DiscardKind, FileSymbols};
use crate::syntax::SourceFile;

/// One lock acquisition inside a fn (summary form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEvent {
    /// Lock identity within the file (receiver field name).
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// One call site inside a fn (summary form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRecord {
    /// Callee name.
    pub name: String,
    /// `Type::name(…)` qualifier, when present.
    pub qualifier: Option<String>,
    /// True for `.name(…)` method calls.
    pub method: bool,
    /// 1-based line of the call.
    pub line: u32,
    /// Indices into the fn's `acquires` whose guards are live here.
    pub held: Vec<usize>,
}

/// One fn in summary form.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Fn name.
    pub name: String,
    /// Enclosing impl type, when any.
    pub impl_type: Option<String>,
    /// 1-based line of the fn name.
    pub line: u32,
    /// Whether the return type mentions `Result`.
    pub returns_result: bool,
    /// Whether the fn is test code.
    pub is_test: bool,
    /// Lock acquisitions, in token order.
    pub acquires: Vec<LockEvent>,
    /// Call sites, in token order.
    pub calls: Vec<CallRecord>,
    /// `(outer, inner)` pairs into `acquires`: inner acquired while
    /// outer's guard is live (the direct lock-order edges).
    pub nested: Vec<(usize, usize)>,
}

/// The serializable digest of one analyzed file.
#[derive(Debug, Clone, Default)]
pub struct FileSummary {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Every fn, in source order.
    pub fns: Vec<FnNode>,
    /// Discard sites (SL008's raw material).
    pub discards: Vec<Discard>,
}

impl FileSummary {
    /// Digest a freshly parsed file.
    pub fn build(file: &SourceFile, sym: &FileSymbols) -> FileSummary {
        let mut fns = Vec::with_capacity(sym.fns.len());
        for f in &sym.fns {
            let acquires: Vec<LockEvent> = f
                .locks
                .iter()
                .map(|a| LockEvent {
                    lock: a.lock.clone(),
                    line: a.line,
                })
                .collect();
            let acquire_sites: Vec<usize> = f.locks.iter().map(|a| a.sig_idx).collect();
            let mut calls = Vec::new();
            for c in &f.calls {
                // Lock/guard-chain calls are modeled as acquisitions, not
                // graph edges; skip the exact acquisition sites and the
                // std guard-preserving chain methods.
                if acquire_sites.contains(&c.sig_idx)
                    || locks::GUARD_PRESERVING.contains(&c.name.as_str())
                {
                    continue;
                }
                let held: Vec<usize> = f
                    .locks
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.sig_idx < c.sig_idx && c.sig_idx < a.live_end)
                    .map(|(ai, _)| ai)
                    .collect();
                calls.push(CallRecord {
                    name: c.name.clone(),
                    qualifier: c.qualifier.clone(),
                    method: c.method,
                    line: c.line,
                    held,
                });
            }
            let mut nested = Vec::new();
            for (ai, a) in f.locks.iter().enumerate() {
                for (bi, b) in f.locks.iter().enumerate() {
                    if ai != bi && a.sig_idx < b.sig_idx && b.sig_idx < a.live_end {
                        nested.push((ai, bi));
                    }
                }
            }
            fns.push(FnNode {
                name: f.name.clone(),
                impl_type: f.impl_type.clone(),
                line: f.line,
                returns_result: f.returns_result,
                is_test: f.is_test,
                acquires,
                calls,
                nested,
            });
        }
        FileSummary {
            rel_path: file.rel_path.clone(),
            fns,
            discards: resolve::discards(file),
        }
    }

    /// Serialize for the incremental cache.
    pub fn to_value(&self) -> Value {
        let fns: Vec<Value> = self
            .fns
            .iter()
            .map(|f| {
                obj(vec![
                    ("name", s(&f.name)),
                    (
                        "impl_type",
                        f.impl_type.as_deref().map(s).unwrap_or(Value::Null),
                    ),
                    ("line", n(f.line)),
                    ("returns_result", Value::Bool(f.returns_result)),
                    ("is_test", Value::Bool(f.is_test)),
                    (
                        "acquires",
                        Value::Arr(
                            f.acquires
                                .iter()
                                .map(|a| obj(vec![("lock", s(&a.lock)), ("line", n(a.line))]))
                                .collect(),
                        ),
                    ),
                    (
                        "calls",
                        Value::Arr(
                            f.calls
                                .iter()
                                .map(|c| {
                                    obj(vec![
                                        ("name", s(&c.name)),
                                        (
                                            "qualifier",
                                            c.qualifier.as_deref().map(s).unwrap_or(Value::Null),
                                        ),
                                        ("method", Value::Bool(c.method)),
                                        ("line", n(c.line)),
                                        (
                                            "held",
                                            Value::Arr(
                                                c.held.iter().map(|&h| n(h as u64)).collect(),
                                            ),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "nested",
                        Value::Arr(
                            f.nested
                                .iter()
                                .map(|&(a, b)| Value::Arr(vec![n(a as u64), n(b as u64)]))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let discards: Vec<Value> = self
            .discards
            .iter()
            .map(|d| {
                obj(vec![
                    (
                        "kind",
                        s(match d.kind {
                            DiscardKind::LetUnderscore => "let_underscore",
                            DiscardKind::OkDiscard => "ok",
                        }),
                    ),
                    ("callee", d.callee.as_deref().map(s).unwrap_or(Value::Null)),
                    (
                        "qualifier",
                        d.qualifier.as_deref().map(s).unwrap_or(Value::Null),
                    ),
                    ("fmt_exempt", Value::Bool(d.fmt_exempt)),
                    ("is_test", Value::Bool(d.is_test)),
                    ("line", n(d.line)),
                    ("col", n(d.col)),
                ])
            })
            .collect();
        obj(vec![
            ("rel_path", s(&self.rel_path)),
            ("fns", Value::Arr(fns)),
            ("discards", Value::Arr(discards)),
        ])
    }

    /// Rebuild from a cached value (lenient: malformed fields degrade to
    /// empty, never error — the caller re-analyzes on hash mismatch, not
    /// on shape drift, so version bumps must change `CACHE_VERSION`).
    pub fn from_value(v: &Value) -> FileSummary {
        let opt_str = |v: &Value, key: &str| v.get(key).and_then(Value::as_str).map(String::from);
        let fns = v
            .get("fns")
            .map(Value::items)
            .unwrap_or(&[])
            .iter()
            .map(|f| FnNode {
                name: f.str_of("name"),
                impl_type: opt_str(f, "impl_type"),
                line: f.u64_of("line") as u32,
                returns_result: f.bool_of("returns_result"),
                is_test: f.bool_of("is_test"),
                acquires: f
                    .get("acquires")
                    .map(Value::items)
                    .unwrap_or(&[])
                    .iter()
                    .map(|a| LockEvent {
                        lock: a.str_of("lock"),
                        line: a.u64_of("line") as u32,
                    })
                    .collect(),
                calls: f
                    .get("calls")
                    .map(Value::items)
                    .unwrap_or(&[])
                    .iter()
                    .map(|c| CallRecord {
                        name: c.str_of("name"),
                        qualifier: opt_str(c, "qualifier"),
                        method: c.bool_of("method"),
                        line: c.u64_of("line") as u32,
                        held: c
                            .get("held")
                            .map(Value::items)
                            .unwrap_or(&[])
                            .iter()
                            .filter_map(Value::as_u64)
                            .map(|h| h as usize)
                            .collect(),
                    })
                    .collect(),
                nested: f
                    .get("nested")
                    .map(Value::items)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|p| {
                        let a = p.items().first()?.as_u64()? as usize;
                        let b = p.items().get(1)?.as_u64()? as usize;
                        Some((a, b))
                    })
                    .collect(),
            })
            .collect();
        let discards = v
            .get("discards")
            .map(Value::items)
            .unwrap_or(&[])
            .iter()
            .map(|d| Discard {
                kind: if d.str_of("kind") == "ok" {
                    DiscardKind::OkDiscard
                } else {
                    DiscardKind::LetUnderscore
                },
                callee: opt_str(d, "callee"),
                qualifier: opt_str(d, "qualifier"),
                fmt_exempt: d.bool_of("fmt_exempt"),
                is_test: d.bool_of("is_test"),
                line: d.u64_of("line") as u32,
                col: d.u64_of("col") as u32,
            })
            .collect();
        FileSummary {
            rel_path: v.str_of("rel_path"),
            fns,
            discards,
        }
    }
}

/// A fn address: `(file index, fn index)` into [`Workspace::files`].
pub type FnId = (usize, usize);

/// How a fn came to (transitively) acquire a lock.
#[derive(Debug, Clone)]
enum Provenance {
    /// Acquired directly at this line.
    Direct(u32),
    /// Inherited from a resolved callee (call at `line`).
    Via(FnId, u32),
}

/// Method names that collide with the std container / iterator /
/// sync / io surface. A workspace method with one of these names is
/// never the target of name-only method resolution, because most call
/// sites with that name are std calls (`guard.iter()`,
/// `condvar.wait_timeout(..)`). Keep sorted; extend when a collision
/// produces a false call edge.
const STD_METHOD_COLLISIONS: &[&str] = &[
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "chain",
    "clear",
    "clone",
    "collect",
    "contains",
    "contains_key",
    "count",
    "dedup",
    "drain",
    "entry",
    "extend",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flush",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "len",
    "load",
    "map",
    "map_err",
    "max",
    "min",
    "next",
    "notify_all",
    "notify_one",
    "ok_or",
    "or_else",
    "parse",
    "pop",
    "position",
    "push",
    "push_str",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "recv",
    "remove",
    "replace",
    "retain",
    "rev",
    "send",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "spawn",
    "split",
    "store",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "try_recv",
    "values",
    "wait",
    "wait_timeout",
    "write_all",
    "zip",
];

/// The resolved workspace: summaries plus name indexes and the
/// transitive may-acquire relation.
pub struct Workspace {
    /// Per-file summaries, in driver order (sorted by path).
    pub files: Vec<FileSummary>,
    /// name → fns, all kinds (SL008's return-type oracle).
    by_name: BTreeMap<String, Vec<FnId>>,
    /// name → method fns (those with an impl type).
    methods: BTreeMap<String, Vec<FnId>>,
    /// name → free fns.
    free: BTreeMap<String, Vec<FnId>>,
    /// (impl type, name) → fns.
    typed: BTreeMap<(String, String), Vec<FnId>>,
    /// Transitive lock set per fn, with witness provenance.
    may_acquire: BTreeMap<FnId, BTreeMap<String, Provenance>>,
}

impl Workspace {
    /// Index the summaries and run the lock-set fixpoint.
    pub fn build(files: Vec<FileSummary>) -> Workspace {
        let mut ws = Workspace {
            files,
            by_name: BTreeMap::new(),
            methods: BTreeMap::new(),
            free: BTreeMap::new(),
            typed: BTreeMap::new(),
            may_acquire: BTreeMap::new(),
        };
        for (fi, file) in ws.files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                let id = (fi, ni);
                ws.by_name.entry(f.name.clone()).or_default().push(id);
                if f.is_test {
                    // Test fns are not resolution targets: library code
                    // cannot call them, and their lock usage is scoped to
                    // the test harness.
                    continue;
                }
                match &f.impl_type {
                    Some(ty) => {
                        ws.methods.entry(f.name.clone()).or_default().push(id);
                        ws.typed
                            .entry((ty.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    None => ws.free.entry(f.name.clone()).or_default().push(id),
                }
            }
        }
        ws.propagate_locks();
        ws
    }

    /// The fn behind an id.
    pub fn fn_node(&self, id: FnId) -> &FnNode {
        &self.files[id.0].fns[id.1]
    }

    /// Every workspace fn with this name (including tests).
    pub fn fns_named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolve one call site to a unique workspace fn, or `None`.
    ///
    /// Method calls are resolved by name only (there are no receiver
    /// types at this layer), so a name that also exists on std types
    /// would mis-resolve every std use of it to the one workspace
    /// method — `guard.iter()` is slice iteration, not `Dataset::iter`.
    /// `STD_METHOD_COLLISIONS` lists such names; calls through them
    /// stay unresolved. Under-approximation: the call graph may miss
    /// edges, it must not invent them.
    pub fn resolve_call(&self, call: &CallRecord) -> Option<FnId> {
        let unique = |m: &BTreeMap<String, Vec<FnId>>| -> Option<FnId> {
            match m.get(&call.name).map(Vec::as_slice) {
                Some([only]) => Some(*only),
                _ => None,
            }
        };
        if call.method {
            if STD_METHOD_COLLISIONS.contains(&call.name.as_str()) {
                return None;
            }
            return unique(&self.methods);
        }
        if let Some(q) = &call.qualifier {
            if let Some(ids) = self.typed.get(&(q.clone(), call.name.clone())) {
                if let [only] = ids.as_slice() {
                    return Some(*only);
                }
                return None;
            }
        }
        unique(&self.free)
    }

    /// Lock identity key: `(file, receiver field)` rendered as one string.
    fn lock_key(&self, file_idx: usize, lock: &str) -> String {
        format!("{}\u{1}{}", self.files[file_idx].rel_path, lock)
    }

    /// Human form of a lock key: `` `lock` (file) ``.
    pub fn lock_display(key: &str) -> String {
        match key.split_once('\u{1}') {
            Some((file, lock)) => format!("`{lock}` ({file})"),
            None => format!("`{key}`"),
        }
    }

    /// Fixpoint: `may_acquire(f) = direct(f) ∪ ⋃ may_acquire(callee)`,
    /// recording how each lock was reached. Deterministic: ids iterate in
    /// `BTreeMap` order and first provenance wins.
    fn propagate_locks(&mut self) {
        let mut may: BTreeMap<FnId, BTreeMap<String, Provenance>> = BTreeMap::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                let mut direct = BTreeMap::new();
                for a in &f.acquires {
                    direct
                        .entry(self.lock_key(fi, &a.lock))
                        .or_insert(Provenance::Direct(a.line));
                }
                may.insert((fi, ni), direct);
            }
        }
        // Edge list once, to keep each pass cheap.
        let mut edges: Vec<(FnId, FnId, u32)> = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                for c in &f.calls {
                    if let Some(callee) = self.resolve_call(c) {
                        if callee != (fi, ni) {
                            edges.push(((fi, ni), callee, c.line));
                        }
                    }
                }
            }
        }
        // The lock-lattice height is tiny (dozens of locks); the fixpoint
        // settles in call-graph-diameter passes. Bound it anyway.
        for _ in 0..32 {
            let mut changed = false;
            for &(caller, callee, line) in &edges {
                let inherited: Vec<String> = may
                    .get(&callee)
                    .map(|m| m.keys().cloned().collect())
                    .unwrap_or_default();
                let into = may.entry(caller).or_default();
                for key in inherited {
                    if let std::collections::btree_map::Entry::Vacant(e) = into.entry(key) {
                        e.insert(Provenance::Via(callee, line));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.may_acquire = may;
    }

    /// The transitive lock keys a fn may acquire.
    pub fn locks_of(&self, id: FnId) -> Vec<String> {
        self.may_acquire
            .get(&id)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Witness chain for `id` reaching `lock`: `` calls `g` (line 12) →
    /// `h` acquires `x` (file:34) ``.
    fn chain_text(&self, mut id: FnId, lock: &str) -> String {
        let mut out = String::new();
        for _ in 0..16 {
            match self.may_acquire.get(&id).and_then(|m| m.get(lock)) {
                Some(Provenance::Direct(line)) => {
                    out.push_str(&format!(
                        "`{}` acquires {} at {}:{}",
                        self.fn_node(id).name,
                        Workspace::lock_display(lock),
                        self.files[id.0].rel_path,
                        line
                    ));
                    return out;
                }
                Some(Provenance::Via(callee, line)) => {
                    out.push_str(&format!(
                        "`{}` (line {}) calls ",
                        self.fn_node(id).name,
                        line
                    ));
                    id = *callee;
                }
                None => break,
            }
        }
        out.push('…');
        out
    }

    /// Build the lock-order graph: one edge per ordered pair of lock
    /// identities observed held-then-acquired, each with a witness.
    pub fn lock_graph(&self) -> LockGraph {
        let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
        for (fi, file) in self.files.iter().enumerate() {
            for f in &file.fns {
                if f.is_test {
                    continue;
                }
                // Direct same-fn nesting.
                for &(ai, bi) in &f.nested {
                    let (a, b) = (&f.acquires[ai], &f.acquires[bi]);
                    let from = self.lock_key(fi, &a.lock);
                    let to = self.lock_key(fi, &b.lock);
                    let witness = format!(
                        "`{}` ({}:{}) acquires {} then {} (line {})",
                        f.name,
                        file.rel_path,
                        a.line,
                        Workspace::lock_display(&from),
                        Workspace::lock_display(&to),
                        b.line
                    );
                    edges.entry((from.clone(), to.clone())).or_insert(LockEdge {
                        from,
                        to,
                        file: file.rel_path.clone(),
                        line: a.line,
                        witness,
                    });
                }
                // Held across a resolved call into lock-acquiring code.
                for c in &f.calls {
                    if c.held.is_empty() {
                        continue;
                    }
                    let Some(callee) = self.resolve_call(c) else {
                        continue;
                    };
                    for to in self.locks_of(callee) {
                        for &ai in &c.held {
                            let a = &f.acquires[ai];
                            let from = self.lock_key(fi, &a.lock);
                            let witness = format!(
                                "`{}` ({}:{}) holds {} and (line {}) calls {}",
                                f.name,
                                file.rel_path,
                                a.line,
                                Workspace::lock_display(&from),
                                c.line,
                                self.chain_text(callee, &to)
                            );
                            edges.entry((from.clone(), to.clone())).or_insert(LockEdge {
                                from,
                                to: to.clone(),
                                file: file.rel_path.clone(),
                                line: a.line,
                                witness,
                            });
                        }
                    }
                }
            }
        }
        LockGraph {
            edges: edges.into_values().collect(),
        }
    }

    /// The call-graph artifact CI uploads: every fn with its resolved
    /// call edges and lock set.
    pub fn callgraph_json(&self) -> String {
        let mut fns: Vec<Value> = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                let calls: Vec<Value> = f
                    .calls
                    .iter()
                    .map(|c| {
                        let resolved = self.resolve_call(c).map(|(tf, tn)| {
                            s(format!(
                                "{}::{}",
                                self.files[tf].rel_path, self.files[tf].fns[tn].name
                            ))
                        });
                        obj(vec![
                            ("name", s(&c.name)),
                            ("line", n(c.line)),
                            ("resolved", resolved.unwrap_or(Value::Null)),
                        ])
                    })
                    .collect();
                fns.push(obj(vec![
                    ("file", s(&file.rel_path)),
                    ("name", s(&f.name)),
                    (
                        "impl_type",
                        f.impl_type.as_deref().map(s).unwrap_or(Value::Null),
                    ),
                    ("line", n(f.line)),
                    ("is_test", Value::Bool(f.is_test)),
                    ("returns_result", Value::Bool(f.returns_result)),
                    (
                        "acquires",
                        Value::Arr(f.acquires.iter().map(|a| s(&a.lock)).collect()),
                    ),
                    (
                        "may_acquire",
                        Value::Arr(
                            self.locks_of((fi, ni))
                                .iter()
                                .map(|k| s(Workspace::lock_display(k)))
                                .collect(),
                        ),
                    ),
                    ("calls", Value::Arr(calls)),
                ]));
            }
        }
        let mut root = BTreeMap::new();
        root.insert("fns".to_string(), Value::Arr(fns));
        Value::Obj(root).to_json()
    }
}

/// One edge in the lock-order graph.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Held lock (key form).
    pub from: String,
    /// Lock acquired while `from` is held (key form).
    pub to: String,
    /// File anchoring the witness.
    pub file: String,
    /// Line of the outer acquisition.
    pub line: u32,
    /// Full human witness for this ordering.
    pub witness: String,
}

/// A cycle in the lock-order graph: the edges, in order.
#[derive(Debug, Clone)]
pub struct LockCycle {
    /// Edge indices into [`LockGraph::edges`], in traversal order.
    pub edges: Vec<usize>,
}

/// The lock-order graph with its cycles.
pub struct LockGraph {
    /// Deduplicated ordering edges, sorted by `(from, to)`.
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// Every elementary inversion: for each edge `A→B`, the shortest
    /// return path `B→…→A` (BFS), deduplicated by node set. Self-edges
    /// (`A→A`, reentrant acquisition) are single-edge cycles.
    pub fn cycles(&self) -> Vec<LockCycle> {
        let mut adj: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (ei, e) in self.edges.iter().enumerate() {
            adj.entry(e.from.as_str()).or_default().push(ei);
        }
        let mut seen: BTreeSet<Vec<&str>> = BTreeSet::new();
        let mut out = Vec::new();
        for (ei, e) in self.edges.iter().enumerate() {
            if e.from == e.to {
                if seen.insert(vec![e.from.as_str()]) {
                    out.push(LockCycle { edges: vec![ei] });
                }
                continue;
            }
            // BFS from e.to back to e.from.
            let mut parent: BTreeMap<&str, usize> = BTreeMap::new();
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(e.to.as_str());
            let mut found = false;
            while let Some(node) = queue.pop_front() {
                if node == e.from {
                    found = true;
                    break;
                }
                for &next_edge in adj.get(node).map(Vec::as_slice).unwrap_or(&[]) {
                    let next = self.edges[next_edge].to.as_str();
                    if next != e.to && !parent.contains_key(next) {
                        parent.insert(next, next_edge);
                        queue.push_back(next);
                    }
                }
            }
            if !found {
                continue;
            }
            // Reconstruct e.to → e.from, then prepend e.
            let mut path = Vec::new();
            let mut node = e.from.as_str();
            while node != e.to {
                let Some(&through) = parent.get(node) else {
                    break;
                };
                path.push(through);
                node = self.edges[through].from.as_str();
            }
            path.push(ei);
            path.reverse();
            let mut nodes: Vec<&str> = path.iter().map(|&p| self.edges[p].from.as_str()).collect();
            nodes.sort_unstable();
            if seen.insert(nodes) {
                out.push(LockCycle { edges: path });
            }
        }
        out
    }

    /// The lock-order-graph artifact CI uploads.
    pub fn to_json(&self) -> String {
        let nodes: BTreeSet<&str> = self
            .edges
            .iter()
            .flat_map(|e| [e.from.as_str(), e.to.as_str()])
            .collect();
        let edges: Vec<Value> = self
            .edges
            .iter()
            .map(|e| {
                obj(vec![
                    ("from", s(Workspace::lock_display(&e.from))),
                    ("to", s(Workspace::lock_display(&e.to))),
                    ("file", s(&e.file)),
                    ("line", n(e.line)),
                    ("witness", s(&e.witness)),
                ])
            })
            .collect();
        let cycles: Vec<Value> = self
            .cycles()
            .iter()
            .map(|c| {
                Value::Arr(
                    c.edges
                        .iter()
                        .map(|&ei| s(&self.edges[ei].witness))
                        .collect(),
                )
            })
            .collect();
        jsonio::obj(vec![
            (
                "nodes",
                Value::Arr(
                    nodes
                        .into_iter()
                        .map(|k| s(Workspace::lock_display(k)))
                        .collect(),
                ),
            ),
            ("edges", Value::Arr(edges)),
            ("cycles", Value::Arr(cycles)),
        ])
        .to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        let files = sources
            .iter()
            .map(|(path, src)| {
                let file = SourceFile::parse(path, src);
                let sym = FileSymbols::analyze(&file);
                FileSummary::build(&file, &sym)
            })
            .collect();
        Workspace::build(files)
    }

    #[test]
    fn summaries_round_trip_through_json() {
        let file = SourceFile::parse(
            "src/a.rs",
            "impl S { fn f(&self) -> Result<(), E> { let g = self.jobs.lock(); \
             self.step(1); let _ = self.emit(); } }\n",
        );
        let sym = FileSymbols::analyze(&file);
        let summary = FileSummary::build(&file, &sym);
        let back = FileSummary::from_value(&jsonio::parse(&summary.to_value().to_json()).unwrap());
        assert_eq!(back.rel_path, summary.rel_path);
        assert_eq!(back.fns.len(), summary.fns.len());
        assert_eq!(back.fns[0].calls, summary.fns[0].calls);
        assert_eq!(back.fns[0].acquires, summary.fns[0].acquires);
        assert_eq!(back.discards.len(), summary.discards.len());
    }

    #[test]
    fn cross_file_inversion_found_with_witness() {
        let w = ws(&[
            (
                "src/a.rs",
                "impl A { fn forward(&self) { let g = self.alpha.lock(); self.tail(); }\n\
                 fn tail(&self) { let h = self.beta.lock(); h.touch(); } }\n",
            ),
            (
                "src/b.rs",
                "impl B { fn backward(&self) { let g = self.beta.lock(); self.head(); }\n\
                 fn head(&self) { let h = self.alpha.lock(); h.touch(); } }\n",
            ),
        ]);
        // Identity is per-file, so a.rs's beta and b.rs's beta differ —
        // use one file to make the cycle real.
        let w2 = ws(&[(
            "src/a.rs",
            "impl A { fn forward(&self) { let g = self.alpha.lock(); self.tail(); }\n\
             fn tail(&self) { let h = self.beta.lock(); h.touch(); }\n\
             fn backward(&self) { let g = self.beta.lock(); self.head(); }\n\
             fn head(&self) { let h = self.alpha.lock(); h.touch(); } }\n",
        )]);
        assert!(w.lock_graph().cycles().is_empty());
        let graph = w2.lock_graph();
        let cycles = graph.cycles();
        assert_eq!(cycles.len(), 1, "edges: {:#?}", graph.edges);
        let witness: Vec<&str> = cycles[0]
            .edges
            .iter()
            .map(|&ei| graph.edges[ei].witness.as_str())
            .collect();
        assert!(
            witness.iter().any(|t| t.contains("`forward`")),
            "{witness:?}"
        );
        assert!(
            witness.iter().any(|t| t.contains("`backward`")),
            "{witness:?}"
        );
        assert!(witness.iter().any(|t| t.contains("calls `tail` acquires")
            || t.contains("calls `head` acquires")
            || t.contains("calls ")),);
    }

    #[test]
    fn reentrant_self_edge_is_a_cycle() {
        let w = ws(&[(
            "src/a.rs",
            "impl A { fn outer(&self) { let g = self.state.lock(); self.inner_step(); }\n\
             fn inner_step(&self) { let h = self.state.lock(); h.poke(); } }\n",
        )]);
        let graph = w.lock_graph();
        let cycles = graph.cycles();
        assert_eq!(cycles.len(), 1, "edges: {:#?}", graph.edges);
        assert_eq!(cycles[0].edges.len(), 1);
    }

    #[test]
    fn ambiguous_names_do_not_resolve() {
        let w = ws(&[(
            "src/a.rs",
            "impl A { fn go(&self) { } }\nimpl B { fn go(&self) { } }\n\
             fn caller(x: &A) { x.go(); }\n",
        )]);
        let call = CallRecord {
            name: "go".into(),
            qualifier: None,
            method: true,
            line: 3,
            held: vec![],
        };
        assert_eq!(w.resolve_call(&call), None);
    }

    #[test]
    fn transitive_locks_propagate_through_call_chain() {
        let w = ws(&[(
            "src/a.rs",
            "fn top() { mid(); }\nfn mid() { bottom(); }\n\
             impl C { fn helper(&self) { let g = self.deep.lock(); g.t(); } }\n\
             fn bottom() { c().helper(); }\n",
        )]);
        let top = w.fns_named("top")[0];
        let locks = w.locks_of(top);
        assert_eq!(locks.len(), 1, "{locks:?}");
        assert!(locks[0].ends_with("deep"));
    }
}
