//! A small, total Rust lexer: every input string is split into a sequence
//! of tokens whose byte ranges tile the input exactly (`concat(tokens) ==
//! input`), and lexing never panics — not even on arbitrary bytes run
//! through [`String::from_utf8_lossy`]. Both properties are proptested.
//!
//! The lexer understands exactly as much Rust as the rule engine needs to
//! be *token-accurate* where the retired grep gate was not: strings (with
//! escapes), raw strings (`r#"…"#`, any hash depth), byte and raw-byte
//! strings, char literals vs lifetimes (`'a'` vs `'a`), raw identifiers
//! (`r#match`), line and nested block comments (doc and plain), numbers,
//! identifiers and single-character punctuation. It does not interpret
//! token *values* — rules only ever compare identifier text and adjacency.

/// Classification of one lexed token. Ranges, not values: the token's text
/// is `&src[token.start..token.end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal and vertical whitespace of any length.
    Whitespace,
    /// `// …` to (exclusive) the newline. `doc` marks `///` and `//!`.
    LineComment {
        /// True for `///` (but not `////`) and `//!` doc comments.
        doc: bool,
    },
    /// `/* … */`, nesting tracked. Unterminated comments run to EOF.
    BlockComment {
        /// True for `/**` (but not `/***` or the empty `/**/`) and `/*!`.
        doc: bool,
        /// False when EOF arrived before the final `*/`.
        terminated: bool,
    },
    /// An identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A raw identifier: `r#name`.
    RawIdent,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `b'\n'`.
    CharLit {
        /// False when the closing quote never arrived on the same line.
        terminated: bool,
    },
    /// A string or byte-string literal with escape processing.
    StrLit {
        /// False when EOF arrived before the closing quote.
        terminated: bool,
    },
    /// A raw (byte) string literal: `r"…"`, `r#"…"#`, `br##"…"##`, …
    RawStrLit {
        /// False when EOF arrived before the closing quote+hashes.
        terminated: bool,
    },
    /// A numeric literal (integer or float, any base, with suffix).
    NumLit,
    /// A single punctuation character (`.`, `!`, `{`, …).
    Punct,
    /// Anything the lexer has no rule for (stray `'`, invalid bytes…).
    Unknown,
}

/// One token: a kind plus the half-open byte range it occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the bytes are.
    pub kind: TokenKind,
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Tokenize `src` completely. The returned tokens tile `[0, src.len())`.
pub fn lex(src: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    while pos < src.len() {
        let start = pos;
        let kind = scan_token(src, &mut pos);
        if pos <= start {
            // Defensive: guarantee progress on any input so lexing is total.
            pos = next_boundary(src, start);
            tokens.push(Token {
                kind: TokenKind::Unknown,
                start,
                end: pos,
            });
        } else {
            tokens.push(Token {
                kind,
                start,
                end: pos,
            });
        }
    }
    tokens
}

/// The char starting at byte `pos`, if any.
fn at(src: &str, pos: usize) -> Option<char> {
    src.get(pos..).and_then(|s| s.chars().next())
}

/// The next char boundary strictly after `pos` (clamped to `len`).
fn next_boundary(src: &str, pos: usize) -> usize {
    let mut p = pos + 1;
    while p < src.len() && !src.is_char_boundary(p) {
        p += 1;
    }
    p.min(src.len())
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Advance past consecutive chars satisfying `pred`.
fn eat_while(src: &str, pos: &mut usize, pred: impl Fn(char) -> bool) {
    while let Some(c) = at(src, *pos) {
        if pred(c) {
            *pos += c.len_utf8();
        } else {
            break;
        }
    }
}

fn scan_token(src: &str, pos: &mut usize) -> TokenKind {
    let Some(first) = at(src, *pos) else {
        return TokenKind::Unknown;
    };
    match first {
        c if c.is_whitespace() => {
            eat_while(src, pos, char::is_whitespace);
            TokenKind::Whitespace
        }
        '/' => scan_slash(src, pos),
        '"' => scan_string(src, pos),
        '\'' => scan_quote(src, pos),
        'r' | 'b' => scan_r_or_b(src, pos),
        c if c.is_ascii_digit() => scan_number(src, pos),
        c if is_ident_start(c) => {
            eat_while(src, pos, is_ident_continue);
            TokenKind::Ident
        }
        c if c.is_ascii() && c.is_ascii_punctuation() => {
            *pos += 1;
            TokenKind::Punct
        }
        c => {
            *pos += c.len_utf8();
            TokenKind::Unknown
        }
    }
}

fn scan_slash(src: &str, pos: &mut usize) -> TokenKind {
    match at(src, *pos + 1) {
        Some('/') => {
            let rest = src.get(*pos..).unwrap_or("");
            let doc =
                (rest.starts_with("///") && !rest.starts_with("////")) || rest.starts_with("//!");
            eat_while(src, pos, |c| c != '\n');
            TokenKind::LineComment { doc }
        }
        Some('*') => {
            let rest = src.get(*pos..).unwrap_or("");
            let doc =
                (rest.starts_with("/**") && !rest.starts_with("/***") && !rest.starts_with("/**/"))
                    || rest.starts_with("/*!");
            *pos += 2; // the opening `/*`
            let mut depth = 1u32;
            let terminated = loop {
                let Some(c) = at(src, *pos) else {
                    break false;
                };
                if c == '*' && at(src, *pos + 1) == Some('/') {
                    *pos += 2;
                    depth -= 1;
                    if depth == 0 {
                        break true;
                    }
                } else if c == '/' && at(src, *pos + 1) == Some('*') {
                    *pos += 2;
                    depth += 1;
                } else {
                    *pos += c.len_utf8();
                }
            };
            TokenKind::BlockComment { doc, terminated }
        }
        _ => {
            *pos += 1;
            TokenKind::Punct
        }
    }
}

/// A normal (or byte) string body, starting at the opening `"`.
fn scan_string(src: &str, pos: &mut usize) -> TokenKind {
    *pos += 1; // opening quote
    let terminated = loop {
        let Some(c) = at(src, *pos) else {
            break false;
        };
        *pos += c.len_utf8();
        match c {
            '\\' => {
                // Skip the escaped char (any char, including `"` and `\`).
                if let Some(esc) = at(src, *pos) {
                    *pos += esc.len_utf8();
                }
            }
            '"' => break true,
            _ => {}
        }
    };
    TokenKind::StrLit { terminated }
}

/// `'` starts a lifetime, a char literal, or (rarely) garbage.
fn scan_quote(src: &str, pos: &mut usize) -> TokenKind {
    let quote = *pos;
    *pos += 1;
    match at(src, *pos) {
        // `'\…'` is always a char literal.
        Some('\\') => scan_char_tail(src, pos),
        Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
            // `'x'` char vs `'x…` lifetime: a closing quote right after one
            // ident char means char literal; otherwise it's a lifetime.
            let after = quote + 1 + c.len_utf8();
            if at(src, after) == Some('\'') {
                *pos = after + 1;
                TokenKind::CharLit { terminated: true }
            } else {
                eat_while(src, pos, is_ident_continue);
                TokenKind::Lifetime
            }
        }
        // `'('`, `'.'`, `' '` and friends: char literal iff closed.
        Some(c) if c != '\'' && c != '\n' => {
            let after = quote + 1 + c.len_utf8();
            if at(src, after) == Some('\'') {
                *pos = after + 1;
                TokenKind::CharLit { terminated: true }
            } else {
                // A stray quote (e.g. inside a macro pattern); emit it
                // alone so the next token restarts cleanly.
                *pos = quote + 1;
                TokenKind::Unknown
            }
        }
        _ => {
            *pos = quote + 1;
            TokenKind::Unknown
        }
    }
}

/// After `'\`: consume the escape and scan to the closing quote.
fn scan_char_tail(src: &str, pos: &mut usize) -> TokenKind {
    *pos += 1; // the backslash
    if let Some(esc) = at(src, *pos) {
        *pos += esc.len_utf8();
    }
    let terminated = loop {
        let Some(c) = at(src, *pos) else {
            break false;
        };
        if c == '\n' {
            break false;
        }
        *pos += c.len_utf8();
        if c == '\'' {
            break true;
        }
    };
    TokenKind::CharLit { terminated }
}

/// `r` / `b` / `br` prefixes: raw strings, byte strings, raw idents — or a
/// plain identifier when none of those match.
fn scan_r_or_b(src: &str, pos: &mut usize) -> TokenKind {
    let rest = src.get(*pos..).unwrap_or("");
    // Longest-prefix dispatch. `b` before `br` would mislex `br"…"`.
    if let Some(tail) = rest.strip_prefix("br") {
        if let Some(kind) = try_raw_string(src, pos, 2, tail) {
            return kind;
        }
    }
    if let Some(tail) = rest.strip_prefix('r') {
        if let Some(kind) = try_raw_string(src, pos, 1, tail) {
            return kind;
        }
        // Raw identifier: `r#name`.
        if let Some(t) = tail.strip_prefix('#') {
            if t.chars().next().is_some_and(is_ident_start) {
                *pos += 2;
                eat_while(src, pos, is_ident_continue);
                return TokenKind::RawIdent;
            }
        }
    }
    if rest.starts_with("b\"") {
        *pos += 1;
        return scan_string(src, pos);
    }
    if rest.starts_with("b'") {
        *pos += 1;
        return scan_quote(src, pos);
    }
    eat_while(src, pos, is_ident_continue);
    TokenKind::Ident
}

/// If `tail` (the text after an `r`/`br` prefix of byte length
/// `prefix_len`) opens a raw string (`#…#"` then `"`), consume it.
fn try_raw_string(src: &str, pos: &mut usize, prefix_len: usize, tail: &str) -> Option<TokenKind> {
    let hashes = tail.bytes().take_while(|&b| b == b'#').count();
    if tail.as_bytes().get(hashes) != Some(&b'"') {
        return None;
    }
    *pos += prefix_len + hashes + 1; // prefix, hashes, opening quote
    let closer: String = std::iter::once('"')
        .chain(std::iter::repeat_n('#', hashes))
        .collect();
    let terminated = loop {
        let Some(remaining) = src.get(*pos..) else {
            break false;
        };
        if remaining.is_empty() {
            break false;
        }
        if remaining.starts_with(closer.as_str()) {
            *pos += closer.len();
            break true;
        }
        *pos = next_boundary(src, *pos);
    };
    Some(TokenKind::RawStrLit { terminated })
}

fn scan_number(src: &str, pos: &mut usize) -> TokenKind {
    let is_num_body = |c: char| c.is_alphanumeric() || c == '_';
    eat_while(src, pos, is_num_body);
    // Fraction and signed-exponent continuation, e.g. `1.5`, `1e-3`,
    // `2.5e+10f64` — but never eat the `..` of a range or a method dot.
    loop {
        let prev = src.get(..*pos).and_then(|s| s.chars().next_back());
        match at(src, *pos) {
            Some('.') => {
                let next = at(src, *pos + 1);
                if next.is_some_and(|c| c.is_ascii_digit()) {
                    *pos += 1;
                    eat_while(src, pos, is_num_body);
                } else {
                    break;
                }
            }
            Some('+') | Some('-')
                if matches!(prev, Some('e') | Some('E'))
                    && at(src, *pos + 1).is_some_and(|c| c.is_ascii_digit()) =>
            {
                *pos += 1;
                eat_while(src, pos, is_num_body);
            }
            _ => break,
        }
    }
    TokenKind::NumLit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn reconstruct(src: &str) -> String {
        lex(src).iter().map(|t| t.text(src)).collect()
    }

    #[test]
    fn tiles_and_reconstructs_simple_source() {
        let src = "fn main() { let x = 1 + 2; }\n";
        let toks = lex(src);
        assert_eq!(reconstruct(src), src);
        let mut expected_start = 0;
        for t in &toks {
            assert_eq!(t.start, expected_start, "tokens must tile: {t:?}");
            assert!(t.end > t.start);
            expected_start = t.end;
        }
        assert_eq!(expected_start, src.len());
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "panic! unwrap() // not a comment";"#;
        let toks = kinds(src);
        assert!(toks.iter().any(
            |(k, text)| matches!(k, TokenKind::StrLit { terminated: true })
                && text.contains("panic!")
        ));
        // No Ident token named panic/unwrap escaped the string.
        assert!(!toks
            .iter()
            .any(|(k, text)| *k == TokenKind::Ident && (*text == "panic" || *text == "unwrap")));
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let src = r#""a\"b" x"#;
        let toks = kinds(src);
        assert_eq!(
            toks[0],
            (TokenKind::StrLit { terminated: true }, r#""a\"b""#)
        );
        assert_eq!(
            toks.last().map(|(k, t)| (*k, *t)),
            Some((TokenKind::Ident, "x"))
        );
    }

    #[test]
    fn raw_strings_ignore_escapes_and_match_hashes() {
        let src = r###"r#"a "quote" \"#,"###;
        let toks = kinds(src);
        assert_eq!(
            toks[0],
            (
                TokenKind::RawStrLit { terminated: true },
                r###"r#"a "quote" \"#"###
            )
        );
        let src2 = "br##\"bytes\"##;";
        assert!(matches!(
            kinds(src2)[0],
            (TokenKind::RawStrLit { terminated: true }, _)
        ));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let s = 'static_thing; }";
        let toks = kinds(src);
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static_thing"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::CharLit { .. }))
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\n'"]);
    }

    #[test]
    fn nested_block_comments_terminate_at_balance() {
        let src = "/* outer /* inner */ still outer */ ident";
        let toks = kinds(src);
        assert_eq!(
            toks[0],
            (
                TokenKind::BlockComment {
                    doc: false,
                    terminated: true
                },
                "/* outer /* inner */ still outer */"
            )
        );
        assert_eq!(
            toks.last().map(|(k, t)| (*k, *t)),
            Some((TokenKind::Ident, "ident"))
        );
    }

    #[test]
    fn doc_comments_are_classified() {
        assert!(matches!(
            kinds("/// doc")[0].0,
            TokenKind::LineComment { doc: true }
        ));
        assert!(matches!(
            kinds("//! inner doc")[0].0,
            TokenKind::LineComment { doc: true }
        ));
        assert!(matches!(
            kinds("//// not doc")[0].0,
            TokenKind::LineComment { doc: false }
        ));
        assert!(matches!(
            kinds("/** block doc */")[0].0,
            TokenKind::BlockComment { doc: true, .. }
        ));
        assert!(matches!(
            kinds("/**/")[0].0,
            TokenKind::BlockComment { doc: false, .. }
        ));
    }

    #[test]
    fn raw_idents_are_not_raw_strings() {
        let toks = kinds("r#match r\"raw\" rest");
        assert_eq!(toks[0], (TokenKind::RawIdent, "r#match"));
        assert_eq!(
            toks[2],
            (TokenKind::RawStrLit { terminated: true }, "r\"raw\"")
        );
        assert_eq!(toks[4], (TokenKind::Ident, "rest"));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = kinds("0..block.len() 1.5e-3f64 0xFF_u8");
        assert_eq!(toks[0], (TokenKind::NumLit, "0"));
        assert_eq!(toks[1], (TokenKind::Punct, "."));
        assert_eq!(toks[2], (TokenKind::Punct, "."));
        assert_eq!(toks[3], (TokenKind::Ident, "block"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::NumLit && *t == "1.5e-3f64"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::NumLit && *t == "0xFF_u8"));
    }

    #[test]
    fn unterminated_forms_run_to_eof_without_panicking() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed",
            "'\\n",
            "b\"open",
        ] {
            let toks = lex(src);
            assert_eq!(toks.iter().map(|t| t.text(src)).collect::<String>(), src);
        }
    }

    #[test]
    fn stray_quote_advances_one_byte() {
        let src = "' foo";
        let toks = kinds(src);
        assert_eq!(toks[0], (TokenKind::Unknown, "'"));
        assert_eq!(toks[2], (TokenKind::Ident, "foo"));
    }
}
