//! Diagnostics: the finding type shared by every rule plus human and JSON
//! rendering. The JSON writer is hand-rolled (the crate has zero
//! dependencies) and emits one stable shape CI archives as an artifact.

/// One diagnostic: a rule code anchored at `file:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule code, e.g. `"SL001"`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl Finding {
    /// `file:line:col: CODE message` — the grep-able human form.
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}:{}: {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Escape `s` as a JSON string body (without surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render one finding as a JSON object.
pub fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
        f.rule,
        json_escape(&f.file),
        f.line,
        f.col,
        json_escape(&f.message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering_is_file_line_col_code() {
        let f = Finding {
            rule: "SL001",
            file: "crates/core/src/x.rs".into(),
            line: 3,
            col: 9,
            message: "panic! in library code".into(),
        };
        assert_eq!(
            f.render_human(),
            "crates/core/src/x.rs:3:9: SL001 panic! in library code"
        );
    }

    #[test]
    fn json_escapes_quotes_newlines_and_controls() {
        assert_eq!(
            json_escape("a\"b\\c\nd\te\u{1}"),
            "a\\\"b\\\\c\\nd\\te\\u0001"
        );
        let f = Finding {
            rule: "SL005",
            file: "a\"b.rs".into(),
            line: 1,
            col: 1,
            message: "x".into(),
        };
        assert!(finding_json(&f).contains("\"file\":\"a\\\"b.rs\""));
    }
}
