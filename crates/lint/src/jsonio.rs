//! A minimal JSON value, parser and writer. The crate has zero
//! dependencies, and the incremental cache (`target/sirum-lint-cache.json`)
//! must survive round-trips across runs — so this is the full loop:
//! [`Value::to_json`] emits what [`parse`] reads back.
//!
//! The parser is total and strict enough for our own output: on any
//! malformed input it returns `None` and the caller treats the cache as
//! absent (a cold run, never an error). Numbers are kept as `f64`, which
//! is exact for every integer we store (hashes are written as hex
//! strings, not numbers, precisely to avoid the 2^53 cliff).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::diag::json_escape;

/// One JSON value. Objects use a `BTreeMap` so serialization is
/// canonical — the cache file is byte-stable for identical inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers round-trip exactly below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, key-sorted.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (negative / fractional → `None`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The bool payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, or an empty slice for non-arrays.
    pub fn items(&self) -> &[Value] {
        match self {
            Value::Arr(items) => items,
            _ => &[],
        }
    }

    /// Object field lookup (None for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Convenience: `get(key)` as a string, defaulting to `""`.
    pub fn str_of(&self, key: &str) -> String {
        self.get(key)
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string()
    }

    /// Convenience: `get(key)` as a `u64`, defaulting to 0.
    pub fn u64_of(&self, key: &str) -> u64 {
        self.get(key).and_then(Value::as_u64).unwrap_or(0)
    }

    /// Convenience: `get(key)` as a bool, defaulting to false.
    pub fn bool_of(&self, key: &str) -> bool {
        self.get(key).and_then(Value::as_bool).unwrap_or(false)
    }

    /// Serialize (compact, canonical key order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Build a `Value::Obj` from pairs.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Shorthand constructors.
pub fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

/// Numeric shorthand (from anything that widens to u64).
pub fn n(num: impl Into<u64>) -> Value {
    Value::Num(num.into() as f64)
}

/// Parse a JSON document; `None` on any syntax error or trailing junk.
pub fn parse(text: &str) -> Option<Value> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(value)
    } else {
        None
    }
}

const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Value> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Value::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return None;
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Value::Obj(map));
                    }
                    _ => return None,
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Value::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'"' => Some(Value::Str(parse_string(bytes, pos)?)),
        b't' => {
            if bytes.len() >= *pos + 4 && &bytes[*pos..*pos + 4] == b"true" {
                *pos += 4;
                Some(Value::Bool(true))
            } else {
                None
            }
        }
        b'f' => {
            if bytes.len() >= *pos + 5 && &bytes[*pos..*pos + 5] == b"false" {
                *pos += 5;
                Some(Value::Bool(false))
            } else {
                None
            }
        }
        b'n' => {
            if bytes.len() >= *pos + 4 && &bytes[*pos..*pos + 4] == b"null" {
                *pos += 4;
                Some(Value::Null)
            } else {
                None
            }
        }
        _ => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        // Surrogates in our own output never occur; map
                        // unpaired ones to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (input came from a &str, so
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).ok()?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .filter(|n| n.is_finite())
        .map(Value::Num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = obj(vec![
            ("name", s("fn \"quoted\"\npath")),
            ("count", n(42u32)),
            ("ok", Value::Bool(true)),
            ("items", Value::Arr(vec![n(1u32), s("two"), Value::Null])),
            ("nested", obj(vec![("k", s("v"))])),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text), Some(v));
    }

    #[test]
    fn canonical_key_order_is_stable() {
        let a = obj(vec![("b", n(2u32)), ("a", n(1u32))]);
        let b = obj(vec![("a", n(1u32)), ("b", n(2u32))]);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn malformed_inputs_parse_to_none() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nan",
            "[1 2]",
            "{\"a\" 1}",
        ] {
            assert_eq!(parse(bad), None, "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn accessors_default_sanely() {
        let v = parse("{\"s\":\"x\",\"n\":7,\"b\":true}").unwrap();
        assert_eq!(v.str_of("s"), "x");
        assert_eq!(v.u64_of("n"), 7);
        assert!(v.bool_of("b"));
        assert_eq!(v.str_of("missing"), "");
        assert_eq!(v.u64_of("missing"), 0);
        assert!(!v.bool_of("missing"));
        assert!(v.get("s").unwrap().items().is_empty());
    }

    #[test]
    fn unicode_and_escape_round_trip() {
        let v = s("héllo → wörld \u{1}");
        let text = v.to_json();
        assert_eq!(parse(&text), Some(v));
        assert_eq!(parse("\"\\u0041\\u00e9\""), Some(s("Aé")));
    }
}
