//! Call-graph golden test: a frozen two-file mini-workspace must digest
//! into exactly this call graph and lock-order graph. Any drift in
//! symbol extraction, call resolution, lock-set propagation, or the
//! JSON emitters shows up here as a readable string diff.

use sirum_lint::callgraph::{FileSummary, Workspace};
use sirum_lint::resolve::FileSymbols;
use sirum_lint::syntax::SourceFile;

const FILE_A: &str = "pub struct Hub {\n    jobs: Mutex<Vec<u32>>,\n}\n\nimpl Hub {\n    pub fn enqueue(&self, v: u32) -> Result<(), String> {\n        let held = self.jobs.lock();\n        audit(v);\n        drop(held);\n        Ok(())\n    }\n}\n";

const FILE_B: &str = "pub fn audit(v: u32) {\n    record(v);\n}\n\nfn record(_v: u32) {}\n";

fn mini_workspace() -> Workspace {
    let files = [("src/a.rs", FILE_A), ("src/b.rs", FILE_B)]
        .iter()
        .map(|(path, src)| {
            let file = SourceFile::parse(path, src);
            let sym = FileSymbols::analyze(&file);
            FileSummary::build(&file, &sym)
        })
        .collect();
    Workspace::build(files)
}

#[test]
fn frozen_mini_workspace_callgraph_is_stable() {
    let ws = mini_workspace();
    let expected = concat!(
        "{\"fns\":[",
        "{\"acquires\":[\"jobs\"],\"calls\":[",
        "{\"line\":8,\"name\":\"audit\",\"resolved\":\"src/b.rs::audit\"},",
        "{\"line\":9,\"name\":\"drop\",\"resolved\":null},",
        "{\"line\":10,\"name\":\"Ok\",\"resolved\":null}],",
        "\"file\":\"src/a.rs\",\"impl_type\":\"Hub\",\"is_test\":false,\"line\":6,",
        "\"may_acquire\":[\"`jobs` (src/a.rs)\"],\"name\":\"enqueue\",\"returns_result\":true},",
        "{\"acquires\":[],\"calls\":[",
        "{\"line\":2,\"name\":\"record\",\"resolved\":\"src/b.rs::record\"}],",
        "\"file\":\"src/b.rs\",\"impl_type\":null,\"is_test\":false,\"line\":1,",
        "\"may_acquire\":[],\"name\":\"audit\",\"returns_result\":false},",
        "{\"acquires\":[],\"calls\":[],",
        "\"file\":\"src/b.rs\",\"impl_type\":null,\"is_test\":false,\"line\":5,",
        "\"may_acquire\":[],\"name\":\"record\",\"returns_result\":false}]}",
    );
    assert_eq!(ws.callgraph_json(), expected);
}

#[test]
fn frozen_mini_workspace_lock_graph_is_stable() {
    let ws = mini_workspace();
    let graph = ws.lock_graph();
    assert_eq!(graph.edges.len(), 0, "no two-lock ordering exists here");
    assert!(graph.cycles().is_empty());
    // `enqueue` is the only acquirer, so `may_acquire` names exactly
    // one lock identity, rendered in its display form.
    let json = ws.callgraph_json();
    assert!(
        json.contains("\"may_acquire\":[\"`jobs` (src/a.rs)\"]"),
        "lock-set propagation drifted: {json}"
    );
}
