//! Fixture-driven rule tests: each `fixtures/slNNN_bad.rs` must produce
//! exactly the findings annotated in it (positions included), each
//! `slNNN_ok.rs` must be clean, and the frozen corpus proves SL001 covers
//! everything the retired awk gate (`scripts/lint-panics.sh`) caught.
//! Finally, the analyzer runs over the real workspace tree — making the
//! lint gate itself part of `cargo test`.

use std::path::Path;

use sirum_lint::driver::check_sources;
use sirum_lint::Finding;

fn lint(rel_path: &str, src: &str) -> Vec<Finding> {
    check_sources(&[(rel_path.to_string(), src.to_string())]).findings
}

/// `(line, col)` of every finding for `rule`, in report order.
fn positions(findings: &[Finding], rule: &str) -> Vec<(u32, u32)> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.line, f.col))
        .collect()
}

fn lines(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn sl001_bad_exact_positions() {
    let findings = lint(
        "crates/core/src/x.rs",
        include_str!("../fixtures/sl001_bad.rs"),
    );
    assert_eq!(
        positions(&findings, "SL001"),
        vec![(4, 5), (8, 7), (12, 7), (16, 5), (20, 5)],
        "findings: {findings:#?}"
    );
    assert_eq!(findings.len(), 5, "only SL001 expected: {findings:#?}");
}

#[test]
fn sl001_ok_is_clean() {
    let findings = lint(
        "crates/core/src/x.rs",
        include_str!("../fixtures/sl001_ok.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn sl001_does_not_run_outside_library_paths() {
    let findings = lint(
        "crates/bench/src/x.rs",
        include_str!("../fixtures/sl001_bad.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn sl002_bad_exact_positions() {
    let findings = lint(
        "crates/core/src/sweep.rs",
        include_str!("../fixtures/sl002_bad.rs"),
    );
    assert_eq!(
        positions(&findings, "SL002"),
        vec![(6, 5), (15, 5)],
        "findings: {findings:#?}"
    );
}

#[test]
fn sl002_ok_is_clean() {
    let findings = lint(
        "crates/core/src/sweep.rs",
        include_str!("../fixtures/sl002_ok.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn sl002_does_not_run_outside_hot_modules() {
    let findings = lint(
        "crates/core/src/lattice.rs",
        include_str!("../fixtures/sl002_bad.rs"),
    );
    assert!(
        lines(&findings, "SL002").is_empty(),
        "findings: {findings:#?}"
    );
}

#[test]
fn sl003_bad_exact_positions() {
    let findings = lint("src/service.rs", include_str!("../fixtures/sl003_bad.rs"));
    assert_eq!(
        positions(&findings, "SL003"),
        vec![(25, 17), (33, 26), (39, 41)],
        "findings: {findings:#?}"
    );
}

#[test]
fn sl003_ok_is_clean() {
    let findings = lint("src/service.rs", include_str!("../fixtures/sl003_ok.rs"));
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn sl004_bad_exact_positions() {
    let findings = lint(
        "src/net/server.rs",
        include_str!("../fixtures/sl004_bad.rs"),
    );
    assert_eq!(
        positions(&findings, "SL004"),
        vec![(6, 14), (13, 13)],
        "findings: {findings:#?}"
    );
}

#[test]
fn sl004_ok_is_clean() {
    let findings = lint("src/net/server.rs", include_str!("../fixtures/sl004_ok.rs"));
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn sl005_bad_exact_positions_and_no_test_exemption() {
    let findings = lint(
        "crates/bench/src/x.rs",
        include_str!("../fixtures/sl005_bad.rs"),
    );
    assert_eq!(
        positions(&findings, "SL005"),
        vec![(4, 5), (7, 5), (15, 17)],
        "findings: {findings:#?}"
    );
}

#[test]
fn sl005_ok_is_clean() {
    let findings = lint(
        "crates/bench/src/x.rs",
        include_str!("../fixtures/sl005_ok.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn sl006_bad_reports_the_seeded_inversion_with_both_witness_paths() {
    let findings = lint("src/state.rs", include_str!("../fixtures/sl006_bad.rs"));
    assert_eq!(
        positions(&findings, "SL006"),
        vec![(15, 1)],
        "findings: {findings:#?}"
    );
    let msg = &findings
        .iter()
        .find(|f| f.rule == "SL006")
        .map(|f| f.message.clone())
        .unwrap_or_default();
    for needle in [
        "lock-order inversion",
        "alpha",
        "beta",
        "forward",
        "backward",
    ] {
        assert!(msg.contains(needle), "witness is missing {needle:?}: {msg}");
    }
}

#[test]
fn sl006_ok_is_clean() {
    let findings = lint("src/state.rs", include_str!("../fixtures/sl006_ok.rs"));
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

/// The inversion only exists across the call graph: `load`/`flush` in
/// one file each take their first lock locally, and the second lock is
/// acquired two hops away through free functions in another file.
#[test]
fn sl006_reports_a_cycle_whose_witness_spans_files() {
    let store = "pub struct Store {\n    alpha: Mutex<Vec<u32>>,\n    beta: Mutex<Vec<u32>>,\n}\n\nimpl Store {\n    pub fn load(&self) {\n        let held = self.alpha.lock();\n        sync_beta(self);\n        drop(held);\n    }\n\n    pub fn push_beta(&self) {\n        self.beta.lock().push(1);\n    }\n\n    pub fn flush(&self) {\n        let held = self.beta.lock();\n        refresh_alpha(self);\n        drop(held);\n    }\n\n    pub fn push_alpha(&self) {\n        self.alpha.lock().push(1);\n    }\n}\n";
    let helpers = "pub fn sync_beta(store: &Store) {\n    store.push_beta();\n}\n\npub fn refresh_alpha(store: &Store) {\n    store.push_alpha();\n}\n";
    let findings = check_sources(&[
        ("src/store.rs".to_string(), store.to_string()),
        ("src/helpers.rs".to_string(), helpers.to_string()),
    ])
    .findings;
    let sl006: Vec<&Finding> = findings.iter().filter(|f| f.rule == "SL006").collect();
    assert_eq!(sl006.len(), 1, "findings: {findings:#?}");
    let msg = &sl006[0].message;
    for needle in ["lock-order inversion", "alpha", "beta", "load", "flush"] {
        assert!(msg.contains(needle), "witness is missing {needle:?}: {msg}");
    }
}

#[test]
fn sl007_bad_exact_positions() {
    let findings = lint(
        "crates/core/src/x.rs",
        include_str!("../fixtures/sl007_bad.rs"),
    );
    assert_eq!(
        positions(&findings, "SL007"),
        vec![(7, 25), (17, 28), (23, 16)],
        "findings: {findings:#?}"
    );
    assert_eq!(findings.len(), 3, "only SL007 expected: {findings:#?}");
}

#[test]
fn sl007_ok_is_clean() {
    let findings = lint(
        "crates/core/src/x.rs",
        include_str!("../fixtures/sl007_ok.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn sl007_does_not_run_outside_deterministic_paths() {
    let findings = lint(
        "crates/bench/src/x.rs",
        include_str!("../fixtures/sl007_bad.rs"),
    );
    assert!(
        lines(&findings, "SL007").is_empty(),
        "findings: {findings:#?}"
    );
}

#[test]
fn sl008_bad_exact_positions() {
    let findings = lint(
        "crates/core/src/x.rs",
        include_str!("../fixtures/sl008_bad.rs"),
    );
    assert_eq!(
        positions(&findings, "SL008"),
        vec![(9, 5), (10, 5), (11, 19)],
        "findings: {findings:#?}"
    );
    assert_eq!(findings.len(), 3, "only SL008 expected: {findings:#?}");
}

#[test]
fn sl008_ok_is_clean() {
    let findings = lint(
        "crates/core/src/x.rs",
        include_str!("../fixtures/sl008_ok.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

#[test]
fn pragma_blesses_only_its_own_line() {
    // The pragma sits two lines above the offending call: no suppression.
    let src = "fn f() {\n    // lint:allow(SL001) — cannot leak downward\n    let a = 1;\n    x.unwrap();\n}\n";
    let findings = lint("crates/core/src/x.rs", src);
    assert_eq!(
        lines(&findings, "SL001"),
        vec![4],
        "findings: {findings:#?}"
    );
    // And the pragma itself is now stale.
    assert_eq!(
        lines(&findings, "SL000"),
        vec![2],
        "findings: {findings:#?}"
    );
}

/// The awk gate's output on `fixtures/frozen_corpus.rs`, captured before
/// `scripts/lint-panics.sh` was deleted (line numbers only):
///
/// ```text
/// crates/lint/fixtures/frozen_corpus.rs:8
/// crates/lint/fixtures/frozen_corpus.rs:10
/// crates/lint/fixtures/frozen_corpus.rs:11
/// crates/lint/fixtures/frozen_corpus.rs:12
/// crates/lint/fixtures/frozen_corpus.rs:13
/// crates/lint/fixtures/frozen_corpus.rs:14
/// crates/lint/fixtures/frozen_corpus.rs:25
/// ```
///
/// Line 25 is a string literal — a regex false positive SL001 must not
/// repeat. Lines 30 (legacy-marker-blessed assert) and 44 (code after the
/// `#[cfg(test)]` scan cutoff) are awk blind spots SL001 must catch.
#[test]
fn sl001_parity_with_frozen_awk_corpus() {
    const AWK_TRUE_POSITIVES: &[u32] = &[8, 10, 11, 12, 13, 14];
    const AWK_STRING_FALSE_POSITIVE: u32 = 25;
    const AWK_BLIND_SPOTS: &[u32] = &[30, 44];

    let findings = lint(
        "crates/core/src/frozen.rs",
        include_str!("../fixtures/frozen_corpus.rs"),
    );
    let sl001 = lines(&findings, "SL001");
    for &line in AWK_TRUE_POSITIVES {
        assert!(
            sl001.contains(&line),
            "awk caught line {line}, SL001 missed it: {sl001:?}"
        );
    }
    assert!(
        !sl001.contains(&AWK_STRING_FALSE_POSITIVE),
        "SL001 repeated awk's string-literal false positive: {sl001:?}"
    );
    for &line in AWK_BLIND_SPOTS {
        assert!(
            sl001.contains(&line),
            "SL001 missed awk blind spot line {line}: {sl001:?}"
        );
    }
    // The retired marker form itself is diagnosed.
    assert!(
        lines(&findings, "SL000").contains(&29),
        "findings: {findings:#?}"
    );
}

/// The real gate: the workspace's own tree must be clean. This is what
/// makes seeding any `_bad` fixture into a library crate fail the suite.
#[test]
fn workspace_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = match sirum_lint::check_tree(&root) {
        Ok(report) => report,
        Err(e) => panic!("discovery failed: {e}"),
    };
    assert!(
        report.files > 50,
        "suspiciously few files: {}",
        report.files
    );
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.render_human()
    );
}
