//! Resolution totality: symbol extraction, call-graph digestion, the
//! lock-set fixpoint, and the whole driver pipeline must never panic —
//! on generated Rust-ish programs and on arbitrary byte soup alike. The
//! analyzer runs in CI over whatever the tree contains mid-refactor, so
//! "malformed input" is a normal Tuesday, not an edge case.

use proptest::collection::vec;
use proptest::prelude::*;
use sirum_lint::callgraph::{FileSummary, Workspace};
use sirum_lint::driver::check_sources;
use sirum_lint::resolve::{self, FileSymbols};
use sirum_lint::syntax::SourceFile;

/// Fragments biased toward what resolve/callgraph/locks actually read:
/// fn items, impl blocks, use-aliases, lock acquisitions, method chains,
/// discards, hash annotations — plus unterminated wreckage.
const FRAGMENTS: &[&str] = &[
    "fn f() -> Result<(), E> { g()?; Ok(()) }",
    "pub fn g(x: u32) -> u32 { x }",
    "impl Hub { fn h(&self) { let held = self.jobs.lock(); self.tick(); drop(held); } }",
    "impl Hub { pub fn tick(&self) { self.state.lock().push(1); } }",
    "use std::collections::HashMap as Map;",
    "use crate::core::mine;",
    "let m: HashMap<String, u32> = HashMap::new();",
    "let keys: Vec<String> = m.keys().cloned().collect();",
    "for (k, v) in &m { out.push(k); }",
    "let _ = persist(data);",
    "handle.join().ok();",
    "let guard = state.read();",
    "struct S { jobs: Mutex<Vec<u32>>, cache: HashMap<u64, u64> }",
    "trait T { fn m(&self) -> Result<(), E>; }",
    "#[cfg(test)] mod tests { fn t() { x.unwrap(); } }",
    "fn unterminated( {",
    "impl {",
    "let broken = \"runs to eof",
    "/* unterminated block",
    "} } ) ( -> :: . self",
    "fn r#match(r#fn: u32) {}",
    "macro_rules! m { () => { lock() } }",
];

fn rustish_source() -> impl Strategy<Value = String> {
    vec((0..FRAGMENTS.len()).prop_map(|i| FRAGMENTS[i]), 0..16).prop_map(|parts| parts.join("\n"))
}

/// Run the full analysis stack over one source; every layer must be
/// total. Returns a checksum so nothing gets optimized away.
fn analyze_everything(rel_path: &str, src: &str) -> usize {
    let file = SourceFile::parse(rel_path, src);
    let sym = FileSymbols::analyze(&file);
    let discards = resolve::discards(&file);
    let summary = FileSummary::build(&file, &sym);
    let ws = Workspace::build(vec![summary]);
    let graph = ws.lock_graph();
    let report = check_sources(&[(rel_path.to_string(), src.to_string())]);
    sym.fns.len()
        + discards.len()
        + graph.cycles().len()
        + ws.callgraph_json().len()
        + report.findings.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn resolution_is_total_on_rustish_source(src in rustish_source()) {
        analyze_everything("crates/core/src/x.rs", &src);
        analyze_everything("src/service.rs", &src);
    }

    #[test]
    fn resolution_is_total_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        analyze_everything("crates/core/src/x.rs", &src);
    }
}
