//! Lexer properties: (1) the token stream exactly tiles the input — so
//! concatenating token texts reconstructs the source byte-for-byte — on
//! generated Rust-ish programs, and (2) the lexer is total: arbitrary
//! bytes (via `from_utf8_lossy`) never panic it, never stall it, and
//! still tile.

use proptest::collection::vec;
use proptest::prelude::*;
use sirum_lint::lexer::lex;

/// Fragments covering every lexer mode, including the nasty ones:
/// nested/unterminated comments, raw strings with hashes, byte strings,
/// lifetimes vs char literals, raw identifiers, float exponents.
const FRAGMENTS: &[&str] = &[
    "fn f() { x.unwrap(); }",
    "let s = \"panic! inside\";",
    "let r = r#\"raw \"quoted\" text\"#;",
    "let b = b\"bytes\";",
    "let br = br##\"double hash\"##;",
    "let c = 'x';",
    "let esc = '\\n';",
    "let life: &'static str = \"\";",
    "for<'a> fn(&'a u32)",
    "let r#type = 1;",
    "/* outer /* nested */ still comment */",
    "// line comment with panic!\n",
    "/// doc comment\n",
    "//! inner doc\n",
    "let f = 1.5e-3f64;",
    "let n = 0xFF_u8;",
    "let range = 0..10;",
    "let float_method = 1.0f64.sqrt();",
    "match x { Some(_) => {} None => {} }",
    "let unterminated = \"runs to eof",
    "/* unterminated block",
    "let stray = '",
    "#[cfg(test)] mod t { }",
    "impl<'a, T: Clone> X<'a, T> { }",
    "q!{ weird tokens => $x # }",
];

fn rustish_source() -> impl Strategy<Value = String> {
    vec((0..FRAGMENTS.len()).prop_map(|i| FRAGMENTS[i]), 0..12).prop_map(|parts| parts.join("\n"))
}

/// Tokens must be non-empty, contiguous, and cover `src` exactly.
fn assert_tiles(src: &str) {
    let tokens = lex(src);
    let mut cursor = 0usize;
    for t in &tokens {
        assert_eq!(
            t.start, cursor,
            "gap or overlap at byte {cursor} in {src:?}"
        );
        assert!(t.end > t.start, "empty token at byte {cursor} in {src:?}");
        cursor = t.end;
    }
    assert_eq!(cursor, src.len(), "tokens do not cover the tail of {src:?}");
    let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
    assert_eq!(rebuilt, src, "reconstruction mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrips_rustish_source(src in rustish_source()) {
        assert_tiles(&src);
    }

    #[test]
    fn total_on_arbitrary_bytes(bytes in vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_tiles(&src);
    }

    #[test]
    fn total_on_arbitrary_text_with_quotes(chunks in vec(prop_oneof![
        Just("\""), Just("'"), Just("r#"), Just("b\""), Just("\\"),
        Just("/*"), Just("*/"), Just("//"), Just("\n"), Just("x"), Just("0"),
    ], 0..64)) {
        let src: String = chunks.concat();
        assert_tiles(&src);
    }
}
