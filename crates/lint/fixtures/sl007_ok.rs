//! SL007 negatives, linted under a synthetic path (crates/core/src/x.rs):
//! hash iteration is fine when the order is laundered before it can be
//! observed — sorted afterwards, re-hashed, reduced, or merged into an
//! ordered container.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn sorted_after(stats: HashMap<String, u64>) -> Vec<String> {
    let mut out: Vec<String> = stats.keys().cloned().collect();
    out.sort();
    out
}

pub fn rehashed(stats: HashMap<u64, u32>) -> HashSet<u64> {
    stats.keys().copied().collect::<HashSet<u64>>()
}

pub fn total(stats: HashMap<u64, u32>) -> u64 {
    stats.values().map(|v| u64::from(*v)).sum()
}

pub fn merged(stats: HashMap<u64, u32>) -> BTreeMap<u64, u32> {
    let mut out = BTreeMap::new();
    for (k, v) in &stats {
        out.insert(*k, *v);
    }
    out
}

pub fn ordered_source(ranks: BTreeMap<String, u64>) -> Vec<String> {
    ranks.keys().cloned().collect()
}
