//! SL008 negatives, linted under a synthetic path (crates/core/src/x.rs):
//! Results propagated or handled, infallible discards, fmt-to-buffer
//! writes, and the reasoned-pragma escape hatch.

use std::fmt::Write;

pub fn persist(data: &[u8]) -> Result<(), Error> {
    store(data)
}

pub fn tally(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

pub fn run(data: &[u8]) -> Result<(), Error> {
    persist(data)?;
    match persist(data) {
        Ok(()) => {}
        Err(e) => return Err(e),
    }
    let _ = tally(&[1]); // not a Result: discard is legal
    // lint:allow(SL008) — fixture: demonstrates the reasoned escape hatch
    let _ = persist(data);
    Ok(())
}

pub fn buffered(out: &mut String) {
    let _ = write!(out, "x"); // fmt-to-String cannot fail
}

#[cfg(test)]
mod tests {
    #[test]
    fn discards_are_fine_in_tests() {
        let _ = super::persist(&[]);
    }
}

/// Shims so the fixture reads like real code (never compiled).
pub struct Error;
fn store(data: &[u8]) -> Result<(), Error> {
    Ok(())
}
