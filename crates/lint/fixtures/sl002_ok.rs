//! SL002 negatives, linted under a synthetic hot-module path.

pub struct Token;
impl Token {
    pub fn is_cancelled(&self) -> bool {
        false
    }
}

pub fn polls_token(rows: &[u32], cancel: &Token) -> u64 {
    let mut total = 0u64;
    for &r in rows {
        if cancel.is_cancelled() {
            break;
        }
        total += r as u64;
    }
    total
}

pub fn polls_work_counter(rows: &[u32]) -> u64 {
    let mut acc = 0u64;
    for (i, &r) in rows.iter().enumerate() {
        if i % 4096 == 0 {
            tick(); // work-unit counter poll
        }
        acc += r as u64;
    }
    acc
}

fn tick() {}

pub fn bounded_bookkeeping(widths: &[usize]) -> usize {
    // Not a data-scale loop: no rows/partitions/folds/blocks in the header.
    let mut max = 0;
    for &w in widths {
        max = max.max(w);
    }
    max
}

pub fn blessed(rows: &[u32]) -> u64 {
    let mut t = 0u64;
    // lint:allow(SL002) — fixture: bounded input, reasoned pragma
    for &r in rows {
        t += r as u64;
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_loops_are_exempt() {
        let rows = [1u32, 2, 3];
        let mut s = 0;
        for &r in rows.iter() {
            s += r;
        }
        assert_eq!(s, 6);
    }
}
