//! SL008 positives, linted under a synthetic path (crates/core/src/x.rs):
//! Result values silently discarded in library code.

pub fn persist(data: &[u8]) -> Result<(), Error> {
    store(data)
}

pub fn run(data: &[u8], handle: Handle) {
    let _ = persist(data); // line 9: workspace oracle says persist returns Result
    let _ = handle.join(); // line 10: join is std-fallible
    persist(data).ok(); // line 11, col 19: terminal `.ok()` discard
}

/// Shims so the fixture reads like real code (never compiled).
pub struct Error;
pub struct Handle;
fn store(data: &[u8]) -> Result<(), Error> {
    Ok(())
}
