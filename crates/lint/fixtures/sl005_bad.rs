//! SL005 positives: any `unsafe` at all.

pub fn deref_raw(p: *const u32) -> u32 {
    unsafe { *p } // line 4, col 5
}

pub unsafe fn unsafe_fn() {} // line 7, col 5

#[cfg(test)]
mod tests {
    #[test]
    fn even_tests_may_not_use_unsafe() {
        let x = 1u32;
        let p = &x as *const u32;
        let _ = unsafe { *p }; // line 15, col 17: SL005 has no test exemption
    }
}
