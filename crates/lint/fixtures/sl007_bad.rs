//! SL007 positives, linted under a synthetic path (crates/core/src/x.rs):
//! hash-ordered iteration escaping into order-sensitive destinations.

use std::collections::{HashMap, HashSet};

pub fn keys_escape(stats: HashMap<String, u64>) -> Vec<String> {
    let escaped = stats.keys().cloned().collect(); // line 7: anchored at `keys`
    escaped
}

pub struct Catalog {
    tables: RwLock<HashMap<String, u32>>,
}

impl Catalog {
    pub fn names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect() // line 17: through the guard
    }
}

pub fn render(seen: HashSet<u64>) -> String {
    let mut out = String::new();
    for id in &seen {
        // line 23: `for` over hash order feeding push_str
        out.push_str(&id.to_string());
    }
    out
}

/// Shim so the fixture reads like real code (never compiled).
pub struct RwLock<T> {
    value: T,
}
