//! SL005 negatives: mentioning unsafe without using it.

/// Doc comments may discuss `unsafe` freely.
pub fn safe_only(v: &[u32]) -> u32 {
    let s = "unsafe in a string is fine";
    // unsafe in a comment is fine too
    v.iter().sum::<u32>() + s.len() as u32
}
