//! SL001 negatives: everything here is legal in library code.

/// Doc text may say panic!, unwrap(), expect(…) freely.
pub fn near_misses(x: Option<u32>) -> Option<u32> {
    let s = "panic! unwrap() expect( assert!"; // strings are opaque
    let r = r#"panic!("raw")"#; // raw strings too
    debug_assert!(!s.is_empty()); // internal invariant, out of scope
    let y = x.unwrap_or(0); // unwrap_or is not unwrap
    let z = x.unwrap_or_else(|| y); // nor is unwrap_or_else
    if r.is_empty() {
        unreachable!("logic error, out of scope");
    }
    x.map(|v| v + z)
}

pub fn blessed(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(SL001) — fixture: reasoned same-line pragma
}

pub fn blessed_above() {
    // lint:allow(SL001) — fixture: reasoned line-above pragma
    panic!("suppressed by the pragma directly above");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        v.expect("fine in tests");
    }
}
