//! SL006 positives, linted under a synthetic path (src/state.rs): a
//! seeded ABBA lock-order inversion. `forward` holds `alpha` while
//! transitively (via `fill`) acquiring `beta`; `backward` holds `beta`
//! while acquiring `alpha` directly. The cycle is reported once, with
//! both witness paths, anchored at the outer acquisition of the first
//! edge.

pub struct Pair {
    alpha: Mutex<Vec<u32>>,
    beta: Mutex<Vec<u32>>,
}

impl Pair {
    pub fn forward(&self, v: u32) {
        let held = self.alpha.lock(); // line 15: cycle anchored here
        self.fill(v);
        drop(held);
    }

    fn fill(&self, v: u32) {
        self.beta.lock().push(v);
    }

    pub fn backward(&self, v: u32) {
        let held = self.beta.lock();
        self.alpha.lock().push(v);
        drop(held);
    }
}

/// Shim so the fixture reads like real code (never compiled).
pub struct Mutex<T> {
    value: T,
}
