//! SL004 negatives, linted under a synthetic path (src/net/server.rs).

pub fn pure_accept_loop(listener: &Listener, pool: &Pool) {
    loop {
        let conn = listener.accept();
        match pool.try_submit(conn) {
            Ok(()) => {}
            Err(_) => reject(conn), // non-blocking admission reject
        }
    }
}

pub fn work_moved_to_connection_thread(listener: &Listener) {
    loop {
        let conn = listener.accept();
        spawn(move || {
            handle(conn); // blocking work on the connection thread is fine
        });
    }
}

pub fn blessed_backoff(listener: &Listener) {
    loop {
        if listener.accept().is_err() {
            // lint:allow(SL004) — fixture: transient-error backoff, reasoned
            sleep(MS_10);
        }
    }
}

pub fn not_an_accept_loop(queue: &Queue) {
    loop {
        let job = queue.recv(); // no accept() in this loop: rule is silent
        run(job);
    }
}

pub struct Listener;
pub struct Pool;
pub struct Queue;
