//! SL002 positives: data-scale loops that never poll cancellation.
//! Linted under a synthetic hot-module path (crates/core/src/sweep.rs).

pub fn scan(rows: &[u32]) -> u64 {
    let mut total = 0u64;
    for &r in rows {
        // line 6, col 5: iterates `rows`, no poll anywhere in the body
        total += r as u64;
    }
    total
}

pub fn nested(partitions: &[Vec<u32>]) -> usize {
    let mut n = 0;
    while n < partitions.len() {
        // line 15, col 5: `partitions` in the header, body never polls
        n += 1;
    }
    n
}
