//! SL006 negatives, linted under a synthetic path (src/state.rs):
//! every multi-lock path acquires in the same order (`alpha` before
//! `beta`), both directly and through a callee, so the lock-order
//! graph has edges but no cycle.

pub struct Pair {
    alpha: Mutex<Vec<u32>>,
    beta: Mutex<Vec<u32>>,
}

impl Pair {
    pub fn forward(&self, v: u32) {
        let held = self.alpha.lock();
        self.fill(v);
        drop(held);
    }

    fn fill(&self, v: u32) {
        self.beta.lock().push(v);
    }

    pub fn also_forward(&self, v: u32) {
        let held = self.alpha.lock();
        self.beta.lock().push(v);
        drop(held);
    }

    pub fn single(&self, v: u32) {
        self.beta.lock().push(v);
    }
}

/// Shim so the fixture reads like real code (never compiled).
pub struct Mutex<T> {
    value: T,
}
