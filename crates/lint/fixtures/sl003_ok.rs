//! SL003 negatives, linted under a synthetic path (src/service.rs).

pub struct S;

impl S {
    pub fn scoped_guard_then_recv(&self) {
        let sender = {
            let state = self.state.lock();
            state.sender() // guard dies with the block
        };
        self.rx.recv(); // fine: no guard live here
        drop(sender);
    }

    pub fn explicit_drop_before_wait(&self) {
        let guard = self.state.lock();
        let ready = guard.ready();
        drop(guard);
        self.cv.wait(ready); // fine: guard dropped above
    }

    pub fn let_chain_leaves_guard_land(&self) {
        // `.take()` consumes the guard temporary at the `;` — the join
        // below runs lock-free (this is the fixed WorkerPool::drop shape).
        let state = self.state.lock().take();
        if let Some(state) = state {
            state.handle.join();
        }
    }

    pub fn plain_if_condition_temporary(&self) {
        // Plain `if` conditions drop their temporaries before the block.
        if self.state.lock().is_empty() {
            self.rx.recv();
        }
    }

    pub fn spawned_closure_blocks_elsewhere(&self) {
        let guard = self.state.lock();
        spawn(move || {
            other.rx.recv(); // runs on another thread, not under our guard
        });
        guard.touch();
    }

    pub fn blessed(&self) {
        let guard = self.lock();
        // lint:allow(SL003) — fixture: condvar wait atomically releases guard
        self.cv.wait(guard);
    }
}
