//! SL001 positives. tests/fixtures.rs asserts the exact positions below.

pub fn p1() {
    panic!("line 4, col 5");
}

pub fn p2(x: Option<u32>) -> u32 {
    x.unwrap() // line 8, col 7
}

pub fn p3(x: Option<u32>) -> u32 {
    x.expect("line 12, col 7")
}

pub fn p4(a: u32) {
    assert!(a > 0); // line 16, col 5
}

pub fn p5() {
    todo!() // line 20, col 5
}
