//! SL003 positives, linted under a synthetic path (src/service.rs).

use std::sync::Mutex;

pub struct S {
    state: Mutex<Option<Inner>>,
    rx: Receiver,
}

pub struct Inner {
    pub handle: Thread,
}
pub struct Thread;
impl Thread {
    pub fn join(&self) {}
}
pub struct Receiver;
impl Receiver {
    pub fn recv(&self) {}
}

impl S {
    pub fn named_guard_across_recv(&self) {
        let guard = self.state.lock();
        self.rx.recv(); // line 25, col 17: guard still live
        drop(guard);
    }

    pub fn if_let_scrutinee_temporary(&self) {
        if let Some(inner) = self.state.lock().take() {
            // Edition-2021 scoping: the guard temporary lives to the end
            // of the whole `if let` block.
            inner.handle.join(); // line 33, col 26
        }
    }

    pub fn match_scrutinee_temporary(&self) {
        match self.state.lock().take() {
            Some(inner) => inner.handle.join(), // line 39, col 41
            None => {}
        }
    }
}

/// Shims so the fixture reads like real code (never compiled).
pub trait LockLike {
    fn lock(&self) -> Option<Inner>;
    fn take(&self) -> Option<Inner>;
}
