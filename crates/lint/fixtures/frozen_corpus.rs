//! Frozen parity corpus for SL001 vs the retired `scripts/lint-panics.sh`
//! awk gate. DO NOT EDIT: `tests/fixtures.rs` hardcodes the awk output
//! captured on this exact file before the script was deleted. Lines
//! matter — the test asserts exact line numbers.

pub fn true_positives(x: Option<u32>) -> u32 {
    if x.is_none() {
        panic!("boom"); // line 8: awk hit, SL001 hit
    }
    let a = x.unwrap(); // line 10: awk hit, SL001 hit
    let b = x.expect("present"); // line 11: awk hit, SL001 hit
    assert!(a == b); // line 12: awk hit, SL001 hit
    assert_eq!(a, b); // line 13: awk hit, SL001 hit
    assert_ne!(a, b + 1); // line 14: awk hit, SL001 hit
    a
}

pub fn out_of_scope(v: &[u32]) {
    debug_assert!(!v.is_empty()); // neither tool flags debug_assert
    // A comment saying panic! or unwrap() is not a finding for either.
}

pub fn string_literal_false_positive() -> &'static str {
    // line 25: awk flags this string literal; SL001 must not.
    "how to panic! safely"
}

pub fn legacy_blessed(a: u32, b: u32) {
    // lint:allow-assert — legacy marker: awk blesses the next line
    assert_eq!(a, b); // line 30: awk misses; SL001 flags (marker is retired)
}

#[cfg(test)]
mod tests {
    #[test]
    fn inside_tests_anything_goes() {
        let v: Option<u32> = Some(1);
        v.unwrap(); // neither tool flags test code
        assert_eq!(super::true_positives(Some(2)), 2);
    }
}

pub fn after_test_mod(x: Option<u32>) -> u32 {
    x.unwrap() // line 44: awk's scan stopped at #[cfg(test)]; SL001 flags
}
