//! SL004 positives, linted under a synthetic path (src/net/server.rs).

pub fn accept_loop_blocks(listener: &Listener, pool: &Pool) {
    loop {
        let conn = listener.accept();
        pool.submit(conn); // line 6, col 14: blocking submit in accept loop
    }
}

pub fn accept_loop_mines_inline(listener: &Listener, svc: &Svc) {
    for conn in listener.incoming() {
        let _ = conn.accept();
        svc.mine(conn); // line 13, col 13: mining on the accept thread
    }
}

pub struct Listener;
pub struct Pool;
pub struct Svc;
