//! Minimal CSV I/O for [`Table`]s.
//!
//! The paper stores its datasets as CSV files in HDFS; this module provides
//! the equivalent boundary for the reproduction. The dialect is deliberately
//! simple: comma-separated, first line is the header (dimension names then
//! the measure name), no quoting — categorical values must not contain commas
//! or newlines, which holds for every dataset the generators produce.

use crate::error::TableError;
use crate::schema::Schema;
use crate::table::Table;
use std::io::{BufRead, Write};

/// Serialize a table as CSV (header + one line per row).
///
/// Returns [`TableError::Unwritable`] when an attribute name or value
/// contains a comma (the dialect has no quoting), or [`TableError::Io`] on
/// a write failure.
pub fn write_csv<W: Write>(table: &Table, out: &mut W) -> Result<(), TableError> {
    let schema = table.schema();
    for (i, name) in schema.dim_names().iter().enumerate() {
        if name.contains(',') || name.contains('\n') {
            return Err(TableError::Unwritable {
                what: "attribute name",
                text: name.clone(),
            });
        }
        if i > 0 {
            out.write_all(b",")?;
        }
        out.write_all(name.as_bytes())?;
    }
    writeln!(out, ",{}", schema.measure_name())?;
    for i in 0..table.num_rows() {
        for (col, &code) in table.row(i).iter().enumerate() {
            let v = table.decode(col, code);
            if v.contains(',') || v.contains('\n') {
                return Err(TableError::Unwritable {
                    what: "value",
                    text: v.to_string(),
                });
            }
            if col > 0 {
                out.write_all(b",")?;
            }
            out.write_all(v.as_bytes())?;
        }
        writeln!(out, ",{}", table.measure(i))?;
    }
    Ok(())
}

/// Parse a CSV produced by [`write_csv`] (or any comma-separated file whose
/// last column is numeric) back into a [`Table`].
///
/// Every malformed input maps to a typed [`TableError`]: a missing header
/// ([`TableError::EmptyInput`]), a header without dimension columns
/// ([`TableError::NoDimensions`]), repeated column names
/// ([`TableError::DuplicateDimension`]), a wrong field count
/// ([`TableError::RaggedLine`]) or a non-numeric measure
/// ([`TableError::BadMeasure`]).
pub fn read_csv<R: BufRead>(input: R) -> Result<Table, TableError> {
    let mut lines = input.lines();
    let header = lines.next().ok_or(TableError::EmptyInput)??;
    let mut cols: Vec<&str> = header.split(',').collect();
    let measure = cols.pop().ok_or(TableError::NoDimensions)?;
    if cols.is_empty() {
        return Err(TableError::NoDimensions);
    }
    let schema = Schema::try_new(cols, measure)?;
    let d = schema.num_dims();
    let mut builder = Table::builder(schema);
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != d + 1 {
            return Err(TableError::RaggedLine {
                line: lineno + 2,
                expected: d + 1,
                found: fields.len(),
            });
        }
        let m: f64 = fields[d].parse().map_err(|_| TableError::BadMeasure {
            line: lineno + 2,
            value: fields[d].to_string(),
        })?;
        builder.try_push_row(&fields[..d], m)?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_preserves_everything() {
        let t = generators::flights();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.schema(), t.schema());
        assert_eq!(back.num_rows(), t.num_rows());
        for i in 0..t.num_rows() {
            let orig: Vec<&str> = t
                .row(i)
                .iter()
                .enumerate()
                .map(|(c, &code)| t.decode(c, code))
                .collect();
            let reread: Vec<&str> = back
                .row(i)
                .iter()
                .enumerate()
                .map(|(c, &code)| back.decode(c, code))
                .collect();
            assert_eq!(orig, reread);
            assert_eq!(t.measure(i), back.measure(i));
        }
    }

    #[test]
    fn rejects_ragged_lines() {
        let csv = "a,b,m\nx,y,1\nx,2\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 3 fields"));
    }

    #[test]
    fn rejects_non_numeric_measure() {
        let csv = "a,m\nx,notanumber\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn typed_errors_name_the_problem() {
        assert!(matches!(read_csv(&b""[..]), Err(TableError::EmptyInput)));
        assert!(matches!(
            read_csv(&b"m\n1\n"[..]),
            Err(TableError::NoDimensions)
        ));
        assert!(matches!(
            read_csv(&b"a,a,m\nx,y,1\n"[..]),
            Err(TableError::DuplicateDimension { .. })
        ));
        assert!(matches!(
            read_csv(&b"a,m\nx,notanumber\n"[..]),
            Err(TableError::BadMeasure { line: 2, .. })
        ));
    }

    #[test]
    fn write_rejects_unwritable_values() {
        let mut b = Table::builder(Schema::new(vec!["a"], "m"));
        b.push_row(&["has,comma"], 1.0);
        let t = b.build();
        let err = write_csv(&t, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, TableError::Unwritable { what: "value", .. }));
    }

    #[test]
    fn skips_blank_lines() {
        let csv = "a,m\nx,1\n\ny,2\n";
        let t = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 2);
    }
}
