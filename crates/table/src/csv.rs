//! Minimal CSV I/O for [`Table`]s.
//!
//! The paper stores its datasets as CSV files in HDFS; this module provides
//! the equivalent boundary for the reproduction. The dialect is deliberately
//! simple: comma-separated, first line is the header (dimension names then
//! the measure name), no quoting — categorical values must not contain commas
//! or newlines, which holds for every dataset the generators produce.

use crate::schema::Schema;
use crate::table::Table;
use std::io::{self, BufRead, Write};

/// Serialize a table as CSV (header + one line per row).
pub fn write_csv<W: Write>(table: &Table, out: &mut W) -> io::Result<()> {
    let schema = table.schema();
    for (i, name) in schema.dim_names().iter().enumerate() {
        assert!(!name.contains(','), "CSV dialect forbids commas in names");
        if i > 0 {
            out.write_all(b",")?;
        }
        out.write_all(name.as_bytes())?;
    }
    writeln!(out, ",{}", schema.measure_name())?;
    for i in 0..table.num_rows() {
        for (col, &code) in table.row(i).iter().enumerate() {
            let v = table.decode(col, code);
            debug_assert!(!v.contains(','), "CSV dialect forbids commas in values");
            if col > 0 {
                out.write_all(b",")?;
            }
            out.write_all(v.as_bytes())?;
        }
        writeln!(out, ",{}", table.measure(i))?;
    }
    Ok(())
}

/// Parse a CSV produced by [`write_csv`] (or any comma-separated file whose
/// last column is numeric) back into a [`Table`].
pub fn read_csv<R: BufRead>(input: R) -> io::Result<Table> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))??;
    let mut cols: Vec<&str> = header.split(',').collect();
    let measure = cols
        .pop()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "header has no columns"))?;
    if cols.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "need at least one dimension column",
        ));
    }
    let schema = Schema::new(cols.clone(), measure);
    let d = schema.num_dims();
    let mut builder = Table::builder(schema);
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != d + 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected {} fields, found {}",
                    lineno + 2,
                    d + 1,
                    fields.len()
                ),
            ));
        }
        let m: f64 = fields[d].parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad measure value: {e}", lineno + 2),
            )
        })?;
        builder.push_row(&fields[..d], m);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_preserves_everything() {
        let t = generators::flights();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.schema(), t.schema());
        assert_eq!(back.num_rows(), t.num_rows());
        for i in 0..t.num_rows() {
            let orig: Vec<&str> = t
                .row(i)
                .iter()
                .enumerate()
                .map(|(c, &code)| t.decode(c, code))
                .collect();
            let reread: Vec<&str> = back
                .row(i)
                .iter()
                .enumerate()
                .map(|(c, &code)| back.decode(c, code))
                .collect();
            assert_eq!(orig, reread);
            assert_eq!(t.measure(i), back.measure(i));
        }
    }

    #[test]
    fn rejects_ragged_lines() {
        let csv = "a,b,m\nx,y,1\nx,2\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 3 fields"));
    }

    #[test]
    fn rejects_non_numeric_measure() {
        let csv = "a,m\nx,notanumber\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let csv = "a,m\nx,1\n\ny,2\n";
        let t = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 2);
    }
}
