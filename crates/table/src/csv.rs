//! CSV I/O for [`Table`]s, in the RFC-4180 dialect.
//!
//! The paper stores its datasets as CSV files in HDFS; this module provides
//! the equivalent boundary for the reproduction. Fields are
//! comma-separated, the first line is the header (dimension names then the
//! measure name), and values containing commas, double quotes, carriage
//! returns or newlines are written inside double quotes with embedded
//! quotes doubled (`"` → `""`), so every categorical value round-trips —
//! the reader accepts quoted fields back, including multi-line ones.

use crate::error::TableError;
use crate::schema::Schema;
use crate::table::Table;
use std::io::{BufRead, Write};

/// True when `field` must be quoted under RFC 4180.
fn needs_quoting(field: &str) -> bool {
    field
        .chars()
        .any(|c| c == ',' || c == '"' || c == '\n' || c == '\r')
}

/// Write one field, quoting and escaping it if the dialect requires.
fn write_field<W: Write>(out: &mut W, field: &str) -> Result<(), TableError> {
    if needs_quoting(field) {
        out.write_all(b"\"")?;
        out.write_all(field.replace('"', "\"\"").as_bytes())?;
        out.write_all(b"\"")?;
    } else {
        out.write_all(field.as_bytes())?;
    }
    Ok(())
}

/// Serialize a table as CSV (header + one line per row). Values with
/// commas, quotes or line breaks are quoted per RFC 4180 and round-trip
/// through [`read_csv`]. Returns [`TableError::Io`] on a write failure.
pub fn write_csv<W: Write>(table: &Table, out: &mut W) -> Result<(), TableError> {
    let schema = table.schema();
    for (i, name) in schema.dim_names().iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write_field(out, name)?;
    }
    out.write_all(b",")?;
    write_field(out, schema.measure_name())?;
    out.write_all(b"\n")?;
    for i in 0..table.num_rows() {
        for (col, &code) in table.row(i).iter().enumerate() {
            if col > 0 {
                out.write_all(b",")?;
            }
            write_field(out, table.decode(col, code))?;
        }
        writeln!(out, ",{}", table.measure(i))?;
    }
    Ok(())
}

/// A streaming record splitter over a buffered reader, honoring RFC-4180
/// quoting: a field starting with `"` runs to the matching closing quote,
/// `""` inside quotes is a literal `"`, and commas *and line breaks*
/// inside quotes do not split — `\r`/`\n` bytes inside a quoted field are
/// preserved exactly (line-based readers would strip the `\r` of an
/// embedded CRLF). Outside quotes, `\n`, `\r\n` and a lone `\r` all
/// terminate a record. A lone `"` inside an unquoted field is taken
/// literally (lenient, like most real-world readers).
///
/// Records are pulled chunk-by-chunk from the reader as they are consumed,
/// so parsing holds one in-progress record — never the whole input.
/// Scanning is byte-wise: every delimiter is ASCII and UTF-8 guarantees
/// ASCII bytes cannot occur inside a multi-byte sequence, so a chunk
/// boundary may split a multi-byte character without confusing the state
/// machine; fields are validated as UTF-8 only once complete.
struct Records<R: BufRead> {
    input: R,
    /// One byte of lookahead (for CRLF pairs and doubled quotes) that has
    /// been pulled from the reader but not yet consumed by the parser.
    peeked: Option<u8>,
    /// 1-based physical line number of the *next* byte.
    line: usize,
}

impl<R: BufRead> Records<R> {
    fn new(input: R) -> Self {
        Records {
            input,
            peeked: None,
            line: 1,
        }
    }

    fn next_byte(&mut self) -> Result<Option<u8>, TableError> {
        if let Some(b) = self.peeked.take() {
            return Ok(Some(b));
        }
        let buf = self.input.fill_buf()?;
        let Some(&b) = buf.first() else {
            return Ok(None);
        };
        self.input.consume(1);
        Ok(Some(b))
    }

    fn peek_byte(&mut self) -> Result<Option<u8>, TableError> {
        if self.peeked.is_none() {
            self.peeked = self.next_byte()?;
        }
        Ok(self.peeked)
    }

    /// Pull the next logical record as `(fields, first physical line)`,
    /// `None` at end of input.
    fn next_record(&mut self) -> Result<Option<(Vec<String>, usize)>, TableError> {
        if self.peek_byte()?.is_none() {
            return Ok(None);
        }
        let start_line = self.line;
        let mut fields = Vec::new();
        let mut cur = Vec::new();
        let take_field = |cur: &mut Vec<u8>| -> Result<String, TableError> {
            String::from_utf8(std::mem::take(cur)).map_err(|_| {
                TableError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "stream did not contain valid UTF-8",
                ))
            })
        };
        let mut in_quotes = false;
        let mut at_field_start = true;
        while let Some(b) = self.next_byte()? {
            if b == b'\n' {
                self.line += 1;
            }
            if in_quotes {
                if b == b'"' {
                    if self.peek_byte()? == Some(b'"') {
                        self.next_byte()?;
                        cur.push(b'"');
                    } else {
                        in_quotes = false;
                    }
                } else {
                    cur.push(b); // commas, \r and \n included, verbatim
                }
                continue;
            }
            match b {
                b'"' if at_field_start => in_quotes = true,
                b',' => {
                    fields.push(take_field(&mut cur)?);
                    at_field_start = true;
                    continue;
                }
                b'\n' => {
                    fields.push(take_field(&mut cur)?);
                    return Ok(Some((fields, start_line)));
                }
                b'\r' => {
                    // CRLF or a lone CR (classic Mac): either way one
                    // physical line ends here.
                    if self.peek_byte()? == Some(b'\n') {
                        self.next_byte()?;
                    }
                    self.line += 1;
                    fields.push(take_field(&mut cur)?);
                    return Ok(Some((fields, start_line)));
                }
                _ => cur.push(b),
            }
            at_field_start = false;
        }
        if in_quotes {
            return Err(TableError::UnclosedQuote { line: start_line });
        }
        fields.push(take_field(&mut cur)?);
        Ok(Some((fields, start_line)))
    }
}

/// Parse a CSV produced by [`write_csv`] (or any RFC-4180 file whose last
/// column is numeric) back into a [`Table`]. Quoted fields — including
/// values with embedded commas, doubled quotes and line breaks — are
/// unescaped.
///
/// Every malformed input maps to a typed [`TableError`]: a missing header
/// ([`TableError::EmptyInput`]), a header without dimension columns
/// ([`TableError::NoDimensions`]), repeated column names
/// ([`TableError::DuplicateDimension`]), a wrong field count
/// ([`TableError::RaggedLine`]), a non-numeric measure
/// ([`TableError::BadMeasure`]) or a quote left open at end of input
/// ([`TableError::UnclosedQuote`]).
pub fn read_csv<R: BufRead>(input: R) -> Result<Table, TableError> {
    // Stream: records are parsed straight out of the reader's buffer and
    // dictionary-encoded into the builder one at a time, so peak memory is
    // the encoded table plus one record — never input-text-sized. (The
    // frame built at registration streams the same way, one morsel at a
    // time, through `FrameBuilder`.)
    let mut records = Records::new(input);

    let Some((mut cols, _)) = records.next_record()? else {
        return Err(TableError::EmptyInput);
    };
    let measure = cols.pop().ok_or(TableError::NoDimensions)?;
    if cols.is_empty() {
        return Err(TableError::NoDimensions);
    }
    let schema = Schema::try_new(cols.iter().map(String::as_str).collect(), &measure)?;
    let d = schema.num_dims();
    let mut builder = Table::builder(schema);
    while let Some((fields, line)) = records.next_record()? {
        if fields.len() == 1 && fields[0].is_empty() {
            continue; // blank line
        }
        if fields.len() != d + 1 {
            return Err(TableError::RaggedLine {
                line,
                expected: d + 1,
                found: fields.len(),
            });
        }
        let m: f64 = fields[d].parse().map_err(|_| TableError::BadMeasure {
            line,
            value: fields[d].clone(),
        })?;
        let dims: Vec<&str> = fields[..d].iter().map(String::as_str).collect();
        builder.try_push_row(&dims, m)?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn round_trip(t: &Table) -> Table {
        let mut buf = Vec::new();
        write_csv(t, &mut buf).unwrap();
        read_csv(buf.as_slice()).unwrap()
    }

    fn assert_tables_equal(a: &Table, b: &Table) {
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.num_rows(), b.num_rows());
        for i in 0..a.num_rows() {
            let orig: Vec<&str> = a
                .row(i)
                .iter()
                .enumerate()
                .map(|(c, &code)| a.decode(c, code))
                .collect();
            let reread: Vec<&str> = b
                .row(i)
                .iter()
                .enumerate()
                .map(|(c, &code)| b.decode(c, code))
                .collect();
            assert_eq!(orig, reread);
            assert_eq!(a.measure(i), b.measure(i));
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = generators::flights();
        assert_tables_equal(&t, &round_trip(&t));
    }

    #[test]
    fn quoted_fields_with_commas_round_trip() {
        let mut b = Table::builder(Schema::new(vec!["City, Country", "Kind"], "m"));
        b.push_row(&["London, UK", "plain"], 1.0);
        b.push_row(&["San Francisco, CA, USA", "with \"quotes\""], 2.5);
        b.push_row(&["multi\nline", "trailing,comma,"], -3.0);
        let t = b.build();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("\"City, Country\",Kind,m\n"));
        assert!(text.contains("\"London, UK\""));
        assert!(text.contains("\"with \"\"quotes\"\"\""));
        assert!(text.contains("\"multi\nline\""));
        assert_tables_equal(&t, &read_csv(buf.as_slice()).unwrap());
    }

    #[test]
    fn reader_accepts_foreign_rfc4180_input() {
        let csv = "a,b,m\n\"x,1\",\"he said \"\"hi\"\"\",3\nplain,\"\",4\n";
        let t = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.decode(0, t.row(0)[0]), "x,1");
        assert_eq!(t.decode(1, t.row(0)[1]), "he said \"hi\"");
        assert_eq!(t.decode(1, t.row(1)[1]), "");
        assert_eq!(t.measure(1), 4.0);
    }

    #[test]
    fn carriage_returns_in_quoted_fields_survive_exactly() {
        // A line-based reader would strip the \r of an embedded CRLF; the
        // raw-text record splitter must not.
        let mut b = Table::builder(Schema::new(vec!["a"], "m"));
        b.push_row(&["x\r\ny"], 1.0);
        b.push_row(&["lone\rcr"], 2.0);
        let t = b.build();
        let back = round_trip(&t);
        assert_eq!(back.decode(0, back.row(0)[0]), "x\r\ny");
        assert_eq!(back.decode(0, back.row(1)[0]), "lone\rcr");
    }

    #[test]
    fn crlf_terminated_input_parses_without_stray_cr() {
        let csv = "a,m\r\nx,1\r\ny,2\r\n";
        let t = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().measure_name(), "m");
        assert_eq!(t.decode(0, t.row(0)[0]), "x");
        assert_eq!(t.decode(0, t.row(1)[0]), "y");
        assert_eq!(t.measure(1), 2.0);
    }

    #[test]
    fn error_line_numbers_count_every_terminator_style() {
        // Lone-\r (classic Mac) terminators must advance the physical line
        // counter too, so diagnostics point at the right record.
        assert!(matches!(
            read_csv(&b"a,m\rx,1\ry,bad\r"[..]),
            Err(TableError::BadMeasure { line: 3, .. })
        ));
        assert!(matches!(
            read_csv(&b"a,m\r\nx,1\r\ny\r\n"[..]),
            Err(TableError::RaggedLine { line: 3, .. })
        ));
    }

    #[test]
    fn unterminated_quote_is_a_typed_error() {
        let csv = "a,m\n\"never closed,1\n";
        assert!(matches!(
            read_csv(csv.as_bytes()),
            Err(TableError::UnclosedQuote { line: 2 })
        ));
    }

    #[test]
    fn rejects_ragged_lines() {
        let csv = "a,b,m\nx,y,1\nx,2\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 3 fields"));
    }

    #[test]
    fn rejects_non_numeric_measure() {
        let csv = "a,m\nx,notanumber\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn typed_errors_name_the_problem() {
        assert!(matches!(read_csv(&b""[..]), Err(TableError::EmptyInput)));
        assert!(matches!(
            read_csv(&b"m\n1\n"[..]),
            Err(TableError::NoDimensions)
        ));
        assert!(matches!(
            read_csv(&b"a,a,m\nx,y,1\n"[..]),
            Err(TableError::DuplicateDimension { .. })
        ));
        assert!(matches!(
            read_csv(&b"a,m\nx,notanumber\n"[..]),
            Err(TableError::BadMeasure { line: 2, .. })
        ));
    }

    #[test]
    fn streaming_reader_survives_chunk_boundaries() {
        // A 7-byte BufReader forces refills mid-field, mid-quote, between
        // the CR and LF of embedded CRLFs, and inside multi-byte UTF-8
        // characters; the parse must match the single-chunk one exactly.
        let mut csv = String::from("a,b,m\n");
        for i in 0..100 {
            csv.push_str(&format!(
                "\"row {i}, with commas\",\"naïve — ünïcode\r\nsecond line\",{i}.5\n"
            ));
        }
        let chunked = read_csv(std::io::BufReader::with_capacity(7, csv.as_bytes())).unwrap();
        assert_eq!(chunked.num_rows(), 100);
        assert_eq!(chunked.decode(0, chunked.row(41)[0]), "row 41, with commas");
        assert_eq!(
            chunked.decode(1, chunked.row(0)[1]),
            "naïve — ünïcode\r\nsecond line"
        );
        assert_eq!(chunked.measure(99), 99.5);
        let whole = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(chunked.fingerprint(), whole.fingerprint());
        // Error line numbers are unaffected by chunking: the quoted field
        // spans two physical lines, so the bad measure sits on line 4.
        let bad = "a,m\n\"multi\nline\",1\nx,notanumber\n";
        assert!(matches!(
            read_csv(std::io::BufReader::with_capacity(3, bad.as_bytes())),
            Err(TableError::BadMeasure { line: 4, .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_an_io_error_not_a_panic() {
        let csv = b"a,m\nx\xff\xfe,1\n";
        assert!(matches!(read_csv(&csv[..]), Err(TableError::Io(_))));
    }

    #[test]
    fn skips_blank_lines() {
        let csv = "a,m\nx,1\n\ny,2\n";
        let t = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 2);
    }
}
