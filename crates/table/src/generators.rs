//! Synthetic dataset generators matching the shapes of the paper's four
//! evaluation datasets, plus the worked flight-delay example (Table 1.1).
//!
//! The real datasets (IPUMS Income, GDELT events, UCI SUSY, NYC TLC trips)
//! are not redistributable here, so each generator reproduces the properties
//! SIRUM's behaviour depends on:
//!
//! * row count and dimension count (scaled down for a single machine),
//! * per-attribute cardinalities with Zipf-skewed value frequencies,
//! * a binary or numeric measure attribute, and
//! * *planted* correlations between a few dimension-value combinations and
//!   the measure, so that genuinely informative rules exist to be mined.
//!
//! All generators are deterministic in their seed.

use crate::schema::Schema;
use crate::table::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipf sampler over `0..cardinality` with exponent `s` (1.0 ≈ natural
/// categorical skew; 0.0 = uniform). Precomputes the CDF once.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `cardinality` values with exponent `s`.
    pub fn new(cardinality: usize, s: f64) -> Self {
        // lint:allow(SL001) — generator-internal contract; all call sites pass literal cardinalities
        assert!(cardinality > 0);
        let mut cdf = Vec::with_capacity(cardinality);
        let mut total = 0.0;
        for k in 1..=cardinality {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw one value in `0..cardinality`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

/// Pre-intern generic value names `"<col>:v<code>"` for every column so that
/// generated codes are dense and stable.
fn pre_intern(builder: &mut TableBuilder, cards: &[usize]) {
    for (col, &card) in cards.iter().enumerate() {
        for v in 0..card {
            builder.intern(col, &format!("c{col}:v{v}"));
        }
    }
}

/// The exact 14-row flight-delay table of the thesis (Table 1.1).
///
/// The informative rules the paper derives from it — `(*,*,London)`,
/// `(Fri,*,*)`, `(Sat,*,*)` — are reproduced in the quickstart example and
/// asserted in the integration tests.
pub fn flights() -> Table {
    let schema = Schema::new(vec!["Day", "Origin", "Destination"], "Delay");
    let mut b = Table::builder(schema);
    let rows: [(&str, &str, &str, f64); 14] = [
        ("Fri", "SF", "London", 20.0),
        ("Fri", "London", "LA", 16.0),
        ("Sun", "Tokyo", "Frankfurt", 10.0),
        ("Sun", "Chicago", "London", 15.0),
        ("Sat", "Beijing", "Frankfurt", 13.0),
        ("Sat", "Frankfurt", "London", 19.0),
        ("Tue", "Chicago", "LA", 5.0),
        ("Wed", "London", "Chicago", 6.0),
        ("Thu", "SF", "Frankfurt", 15.0),
        ("Mon", "Beijing", "SF", 4.0),
        ("Mon", "SF", "London", 7.0),
        ("Mon", "SF", "Frankfurt", 5.0),
        ("Mon", "Tokyo", "Beijing", 6.0),
        ("Mon", "Frankfurt", "Tokyo", 4.0),
    ];
    for (day, origin, dest, delay) in rows {
        b.push_row(&[day, origin, dest], delay);
    }
    b.build()
}

/// Income-like dataset: census household demographics with a binary measure
/// ("income exceeds $100k"). Paper shape: 1.5M rows × 9 dims, 78M possible
/// rules; default reproduction scale is `n` rows with the same cardinalities.
pub fn income_like(n: usize, seed: u64) -> Table {
    let cards = [9usize, 2, 5, 7, 12, 6, 2, 10, 4];
    let names = vec![
        "AgeBracket",
        "Sex",
        "MaritalStatus",
        "Education",
        "Occupation",
        "Race",
        "Veteran",
        "Region",
        "Children",
    ];
    let schema = Schema::new(names, "IncomeOver100k");
    let mut b = Table::builder(schema);
    pre_intern(&mut b, &cards);
    let mut rng = StdRng::seed_from_u64(seed);
    let zipfs: Vec<Zipf> = cards.iter().map(|&c| Zipf::new(c, 0.8)).collect();
    let mut codes = vec![0u32; cards.len()];
    for _ in 0..n {
        for (col, z) in zipfs.iter().enumerate() {
            codes[col] = z.sample(&mut rng);
        }
        // Planted signal: education and occupation dominate; age interacts.
        let mut p: f64 = 0.06;
        if codes[3] >= 5 {
            p += 0.28; // advanced education
        }
        if codes[4] <= 1 {
            p += 0.22; // top occupations
        }
        if codes[0] >= 4 && codes[0] <= 6 {
            p += 0.08; // prime earning age
        }
        if codes[2] == 1 {
            p += 0.05; // married
        }
        let m = f64::from(rng.gen::<f64>() < p.min(0.95));
        b.push_coded_row(&codes, m);
    }
    b.build()
}

/// GDELT-like dataset: global event records with a numeric measure (number
/// of mentions). Paper shape: 3.8M rows × 9 dims, 12B possible rules.
pub fn gdelt_like(n: usize, seed: u64) -> Table {
    let cards = [40usize, 15, 2, 30, 4, 6, 6, 6, 12];
    let names = vec![
        "Actor1Country",
        "Actor1Type",
        "IsRootEvent",
        "EventBaseCode",
        "EventClass",
        "Actor1GeoType",
        "Actor2GeoType",
        "ActionGeoType",
        "Month",
    ];
    let schema = Schema::new(names, "NumMentions");
    let mut b = Table::builder(schema);
    pre_intern(&mut b, &cards);
    let mut rng = StdRng::seed_from_u64(seed);
    let zipfs: Vec<Zipf> = cards.iter().map(|&c| Zipf::new(c, 1.1)).collect();
    let mut codes = vec![0u32; cards.len()];
    for _ in 0..n {
        for (col, z) in zipfs.iter().enumerate() {
            codes[col] = z.sample(&mut rng);
        }
        // Mentions follow a heavy tail; conflict events from big actors and
        // root events get systematically more coverage.
        let mut scale: f64 = 2.0;
        if codes[4] == 3 {
            scale *= 4.0; // material conflict
        }
        if codes[2] == 1 {
            scale *= 2.0; // root event
        }
        if codes[0] == 0 {
            scale *= 1.8; // dominant country
        }
        if codes[1] == 0 && codes[4] >= 2 {
            scale *= 2.5; // media-reported conflict
        }
        // Pareto-ish tail: scale / U^0.5, capped.
        let u: f64 = rng.gen::<f64>().max(1e-6);
        let m = (scale / u.powf(0.35)).min(10_000.0).round();
        b.push_coded_row(&codes, m);
    }
    b.build()
}

/// GDELT data-quality variant for the data-cleansing application (§1,
/// Table 1.5): 8 dims with semantic names, binary measure = "Actor2 type is
/// missing" correlated with media-reported US conflict events.
pub fn gdelt_dirty(n: usize, seed: u64) -> Table {
    let names = vec![
        "Actor1Country",
        "Actor1Type",
        "IsRootEvent",
        "EventBaseCode",
        "EventClass",
        "Actor1GeoType",
        "Actor2GeoType",
        "ActionGeoType",
    ];
    let countries = ["US", "CN", "RU", "GB", "FR", "DE", "IN", "BR"];
    let actor_types = [
        "Media",
        "Government",
        "Police",
        "Rebels",
        "NGO",
        "PoliticalOpposition",
    ];
    let root = ["0", "1"];
    let base_codes = ["010", "020", "036", "051", "112", "114", "173", "190"];
    let classes = [
        "VerbalCooperation",
        "MaterialCooperation",
        "VerbalConflict",
        "MaterialConflict",
    ];
    let geo = ["USCITY", "USSTATE", "WORLDCITY", "WORLDSTATE", "COUNTRY"];
    let schema = Schema::new(names, "IsActor2TypeMissing");
    let mut b = Table::builder(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    let z_country = Zipf::new(countries.len(), 1.2);
    let z_actor = Zipf::new(actor_types.len(), 1.0);
    let z_code = Zipf::new(base_codes.len(), 0.9);
    let z_class = Zipf::new(classes.len(), 0.5);
    let z_geo = Zipf::new(geo.len(), 1.0);
    for _ in 0..n {
        let country = countries[z_country.sample(&mut rng) as usize];
        let actor = actor_types[z_actor.sample(&mut rng) as usize];
        let is_root = root[usize::from(rng.gen::<f64>() < 0.4)];
        let code = base_codes[z_code.sample(&mut rng) as usize];
        let class = classes[z_class.sample(&mut rng) as usize];
        let g1 = geo[z_geo.sample(&mut rng) as usize];
        let g2 = geo[z_geo.sample(&mut rng) as usize];
        let g3 = geo[z_geo.sample(&mut rng) as usize];
        // Planted data-quality defect: media-reported US material-conflict
        // events very often lack the second actor's type (cf. Table 1.5).
        let mut p: f64 = 0.12;
        if country == "US" && actor == "Media" && class == "MaterialConflict" {
            p = 0.92;
        } else if code == "173" {
            p = 0.75;
        } else if class == "MaterialConflict" {
            p = 0.35;
        }
        let m = f64::from(rng.gen::<f64>() < p);
        b.push_row(&[country, actor, is_root, code, class, g1, g2, g3], m);
    }
    b.build()
}

/// SUSY-like dataset: Monte-Carlo particle-collision features bucketed into
/// 3 values per attribute, binary measure = "signal process". Paper shape:
/// 5M rows × 18 dims, 68B possible rules.
pub fn susy_like(n: usize, seed: u64) -> Table {
    const D: usize = 18;
    let cards = [3usize; D];
    let names: Vec<String> = (0..D).map(|i| format!("Feature{i:02}")).collect();
    let schema = Schema::new(names, "IsSignal");
    let mut b = Table::builder(schema);
    pre_intern(&mut b, &cards);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut codes = [0u32; D];
    for _ in 0..n {
        // Latent class decides both the bucket biases and the label,
        // mirroring how SUSY features separate signal from background.
        let signal = rng.gen::<f64>() < 0.45;
        for (col, c) in codes.iter_mut().enumerate() {
            // The first few features are informative; the rest are noise.
            let bias = if col < 6 {
                if signal {
                    0.55
                } else {
                    0.2
                }
            } else {
                1.0 / 3.0
            };
            let u: f64 = rng.gen();
            *c = if u < bias {
                2
            } else if u < bias + (1.0 - bias) / 2.0 {
                1
            } else {
                0
            };
        }
        // Label noise keeps the mining problem non-trivial.
        let label = if rng.gen::<f64>() < 0.9 {
            signal
        } else {
            !signal
        };
        b.push_coded_row(&codes, f64::from(label));
    }
    b.build()
}

/// TLC-like dataset: NYC yellow-taxi trips with a numeric measure (total
/// payment). Paper shape: 1.08B rows × 9 dims; `TLC_160m`…`TLC_2m` samples.
pub fn tlc_like(n: usize, seed: u64) -> Table {
    let cards = [12usize, 6, 4, 16, 16, 16, 16, 5, 3];
    let names = vec![
        "Month",
        "Passengers",
        "Payment",
        "PickupLon",
        "PickupLat",
        "DropoffLon",
        "DropoffLat",
        "RateCode",
        "Vendor",
    ];
    let schema = Schema::new(names, "TotalPayment");
    let mut b = Table::builder(schema);
    pre_intern(&mut b, &cards);
    let mut rng = StdRng::seed_from_u64(seed);
    let zipfs: Vec<Zipf> = cards.iter().map(|&c| Zipf::new(c, 0.6)).collect();
    let mut codes = vec![0u32; cards.len()];
    for _ in 0..n {
        for (col, z) in zipfs.iter().enumerate() {
            codes[col] = z.sample(&mut rng);
        }
        // Fares grow with implied trip distance (grid distance between
        // pickup and dropoff buckets); airport rate codes pay a premium.
        let dist = (f64::from(codes[3]) - f64::from(codes[5])).abs()
            + (f64::from(codes[4]) - f64::from(codes[6])).abs();
        let mut fare = 3.5 + 2.2 * dist + rng.gen::<f64>() * 4.0;
        if codes[7] >= 3 {
            fare += 35.0; // airport flat rates
        }
        if codes[2] == 1 {
            fare *= 1.18; // card payments include tips
        }
        b.push_coded_row(&codes, (fare * 100.0).round() / 100.0);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "head should dominate tail");
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((1600..2400).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn flights_matches_paper_table() {
        let t = flights();
        assert_eq!(t.num_rows(), 14);
        assert_eq!(t.num_dims(), 3);
        assert!((t.avg_measure() - 145.0 / 14.0).abs() < 1e-9); // paper: 10.4
                                                                // London-bound flights: rows 1,4,6,11 avg 15.25 (paper: 15.3).
        let london = t.dict(2).code("London").unwrap();
        let (sum, cnt) = (0..14)
            .filter(|&i| t.row(i)[2] == london)
            .fold((0.0, 0), |(s, c), i| (s + t.measure(i), c + 1));
        assert_eq!(cnt, 4);
        assert!((sum / f64::from(cnt) - 15.25).abs() < 1e-9);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = income_like(500, 7);
        let b = income_like(500, 7);
        assert_eq!(a.measures(), b.measures());
        assert_eq!(a.row(123), b.row(123));
        let c = income_like(500, 8);
        assert_ne!(a.measures(), c.measures());
    }

    #[test]
    fn income_shape_and_signal() {
        let t = income_like(20_000, 42);
        assert_eq!(t.num_dims(), 9);
        assert_eq!(t.num_rows(), 20_000);
        let base = t.avg_measure();
        assert!(base > 0.05 && base < 0.5, "base rate {base}");
        // Planted rule: Education >= 5 must have a visibly higher rate.
        let (mut hi_sum, mut hi_n) = (0.0, 0usize);
        for i in 0..t.num_rows() {
            if t.row(i)[3] >= 5 {
                hi_sum += t.measure(i);
                hi_n += 1;
            }
        }
        assert!(hi_n > 100);
        assert!(hi_sum / hi_n as f64 > base + 0.1);
    }

    #[test]
    fn gdelt_measure_is_heavy_tailed() {
        let t = gdelt_like(20_000, 42);
        assert_eq!(t.num_dims(), 9);
        let avg = t.avg_measure();
        let max = t.measures().iter().cloned().fold(0.0, f64::max);
        assert!(max > avg * 20.0, "max {max} avg {avg}");
        assert!(t.measures().iter().all(|&m| m >= 1.0));
    }

    #[test]
    fn gdelt_dirty_plants_the_table_1_5_rule() {
        let t = gdelt_dirty(30_000, 42);
        let us = t.dict(0).code("US").unwrap();
        let media = t.dict(1).code("Media").unwrap();
        let conflict = t.dict(4).code("MaterialConflict").unwrap();
        let (mut sum, mut n) = (0.0, 0usize);
        for i in 0..t.num_rows() {
            let r = t.row(i);
            if r[0] == us && r[1] == media && r[4] == conflict {
                sum += t.measure(i);
                n += 1;
            }
        }
        assert!(n > 50, "planted combination must be frequent, got {n}");
        assert!(sum / n as f64 > 0.8, "avg {}", sum / n as f64);
        assert!(t.avg_measure() < 0.5);
    }

    #[test]
    fn susy_shape_and_projections() {
        let t = susy_like(5_000, 42);
        assert_eq!(t.num_dims(), 18);
        assert!(t.cardinalities().iter().all(|&c| c == 3));
        let p = t.project(10);
        assert_eq!(p.num_dims(), 10);
        assert_eq!(p.num_rows(), 5_000);
        // Possible-rule count grows exponentially with d: 4^18 vs 4^10.
        assert!(t.possible_rule_count() > p.possible_rule_count() * 1e4);
    }

    #[test]
    fn tlc_fares_are_positive_and_distance_correlated() {
        let t = tlc_like(20_000, 42);
        assert!(t.measures().iter().all(|&m| m > 0.0));
        // Long implied distances must cost more on average.
        let (mut near, mut near_n, mut far, mut far_n) = (0.0, 0, 0.0, 0);
        for i in 0..t.num_rows() {
            let r = t.row(i);
            let dist = (f64::from(r[3]) - f64::from(r[5])).abs()
                + (f64::from(r[4]) - f64::from(r[6])).abs();
            if dist < 2.0 {
                near += t.measure(i);
                near_n += 1;
            } else if dist > 8.0 {
                far += t.measure(i);
                far_n += 1;
            }
        }
        assert!(near_n > 100 && far_n > 100);
        assert!(far / f64::from(far_n) > near / f64::from(near_n) + 5.0);
    }
}
