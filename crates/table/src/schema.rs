//! Schema description for a multidimensional dataset: named categorical
//! dimension attributes plus one numeric measure attribute.

use crate::error::TableError;

/// Names of the dimension attributes and the measure attribute of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    dims: Vec<String>,
    measure: String,
}

impl Schema {
    /// Build a schema from dimension attribute names and a measure name.
    ///
    /// # Panics
    /// Panics if `dims` is empty or contains duplicates. Use
    /// [`Schema::try_new`] on untrusted input (e.g. CSV headers).
    pub fn new<S: Into<String>>(dims: Vec<S>, measure: impl Into<String>) -> Self {
        match Self::try_new(dims, measure) {
            Ok(schema) => schema,
            Err(e) => crate::error::fail(e),
        }
    }

    /// Fallible form of [`Schema::new`]: rejects an empty dimension list
    /// ([`TableError::NoDimensions`]) and duplicate attribute names
    /// ([`TableError::DuplicateDimension`]).
    pub fn try_new<S: Into<String>>(
        dims: Vec<S>,
        measure: impl Into<String>,
    ) -> Result<Self, TableError> {
        let dims: Vec<String> = dims.into_iter().map(Into::into).collect();
        if dims.is_empty() {
            return Err(TableError::NoDimensions);
        }
        for (i, a) in dims.iter().enumerate() {
            if dims[..i].contains(a) {
                return Err(TableError::DuplicateDimension { name: a.clone() });
            }
        }
        Ok(Schema {
            dims,
            measure: measure.into(),
        })
    }

    /// Number of dimension attributes (the paper's `d`).
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Dimension attribute names in column order.
    pub fn dim_names(&self) -> &[String] {
        &self.dims
    }

    /// Name of dimension attribute `i`.
    pub fn dim_name(&self, i: usize) -> &str {
        &self.dims[i]
    }

    /// Name of the measure attribute.
    pub fn measure_name(&self) -> &str {
        &self.measure
    }

    /// Index of the dimension attribute named `name`, if present.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d == name)
    }

    /// Schema restricted to the first `d` dimension attributes (used for the
    /// paper's SUSY projections over 10..18 dims).
    pub fn project(&self, d: usize) -> Schema {
        // lint:allow(SL001) — documented projection contract; miner validates dimension counts first
        assert!(d >= 1 && d <= self.dims.len());
        Schema {
            dims: self.dims[..d].to_vec(),
            measure: self.measure.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = Schema::new(vec!["Day", "Origin", "Destination"], "Delay");
        assert_eq!(s.num_dims(), 3);
        assert_eq!(s.dim_name(1), "Origin");
        assert_eq!(s.measure_name(), "Delay");
        assert_eq!(s.dim_index("Destination"), Some(2));
        assert_eq!(s.dim_index("nope"), None);
    }

    #[test]
    fn project_keeps_prefix() {
        let s = Schema::new(vec!["a", "b", "c"], "m");
        let p = s.project(2);
        assert_eq!(p.dim_names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(p.measure_name(), "m");
    }

    #[test]
    fn try_new_returns_typed_errors() {
        assert!(matches!(
            Schema::try_new(Vec::<String>::new(), "m"),
            Err(TableError::NoDimensions)
        ));
        assert!(matches!(
            Schema::try_new(vec!["a", "b", "a"], "m"),
            Err(TableError::DuplicateDimension { name }) if name == "a"
        ));
        assert!(Schema::try_new(vec!["a", "b"], "m").is_ok());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let _ = Schema::new(vec!["a", "a"], "m");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_dims_rejected() {
        let _ = Schema::new(Vec::<String>::new(), "m");
    }
}
