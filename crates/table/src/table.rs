//! The `Table` type: a dictionary-encoded multidimensional dataset with a
//! numeric measure column, stored flat (no per-row allocation).

use crate::dict::Dictionary;
use crate::error::TableError;
use crate::schema::Schema;

/// A multidimensional dataset `D`: `n` rows × `d` categorical dimension
/// attributes (dictionary-encoded `u32`) plus one numeric measure column.
///
/// Dimension codes are stored row-major in one flat buffer, so `row(i)`
/// is a zero-copy slice.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    dicts: Vec<Dictionary>,
    dims: Vec<u32>,
    measure: Vec<f64>,
}

impl Table {
    /// Start building a table for the given schema.
    pub fn builder(schema: Schema) -> TableBuilder {
        let d = schema.num_dims();
        TableBuilder {
            schema,
            dicts: (0..d).map(|_| Dictionary::new()).collect(),
            dims: Vec::new(),
            measure: Vec::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows `n`.
    pub fn num_rows(&self) -> usize {
        self.measure.len()
    }

    /// Number of dimension attributes `d`.
    pub fn num_dims(&self) -> usize {
        self.schema.num_dims()
    }

    /// Dimension codes of row `i`.
    pub fn row(&self, i: usize) -> &[u32] {
        let d = self.num_dims();
        &self.dims[i * d..(i + 1) * d]
    }

    /// Measure value of row `i`.
    pub fn measure(&self, i: usize) -> f64 {
        self.measure[i]
    }

    /// The whole measure column.
    pub fn measures(&self) -> &[f64] {
        &self.measure
    }

    /// The dictionary of dimension attribute `col`.
    pub fn dict(&self, col: usize) -> &Dictionary {
        &self.dicts[col]
    }

    /// Decode `code` of dimension attribute `col` to its string value.
    pub fn decode(&self, col: usize, code: u32) -> &str {
        self.dicts[col].value(code)
    }

    /// Iterate over rows as dimension-code slices.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        self.dims.chunks_exact(self.num_dims().max(1))
    }

    /// Average of the measure column (`m(r)` for the all-wildcards rule).
    pub fn avg_measure(&self) -> f64 {
        if self.measure.is_empty() {
            return 0.0;
        }
        self.measure.iter().sum::<f64>() / self.measure.len() as f64
    }

    /// Sum of the measure column.
    pub fn sum_measure(&self) -> f64 {
        self.measure.iter().sum()
    }

    /// Active-domain cardinalities per dimension attribute.
    pub fn cardinalities(&self) -> Vec<usize> {
        self.dicts.iter().map(Dictionary::cardinality).collect()
    }

    /// Number of syntactically possible rules `∏ (|dom(Aᵢ)| + 1)` (the
    /// quantity the paper quotes per dataset, e.g. 78 million for Income).
    pub fn possible_rule_count(&self) -> f64 {
        self.dicts
            .iter()
            .map(|d| d.cardinality() as f64 + 1.0)
            .product()
    }

    /// Restrict the table to its first `d` dimension attributes (the paper's
    /// SUSY projections, Fig 3.2 / 5.7).
    pub fn project(&self, d: usize) -> Table {
        // lint:allow(SL001) — documented projection contract; miner validates dimension counts first
        assert!(d >= 1 && d <= self.num_dims());
        let full_d = self.num_dims();
        let mut dims = Vec::with_capacity(self.num_rows() * d);
        for row in self.dims.chunks_exact(full_d) {
            dims.extend_from_slice(&row[..d]);
        }
        Table {
            schema: self.schema.project(d),
            dicts: self.dicts[..d].to_vec(),
            dims,
            measure: self.measure.clone(),
        }
    }

    /// Keep only the rows at the given indices (in the given order).
    pub fn select_rows(&self, indices: &[usize]) -> Table {
        let d = self.num_dims();
        let mut dims = Vec::with_capacity(indices.len() * d);
        let mut measure = Vec::with_capacity(indices.len());
        for &i in indices {
            dims.extend_from_slice(self.row(i));
            measure.push(self.measure[i]);
        }
        Table {
            schema: self.schema.clone(),
            dicts: self.dicts.clone(),
            dims,
            measure,
        }
    }

    /// Replace the measure column (used by measure transforms). The new
    /// column must have one value per row.
    pub fn with_measure(&self, measure: Vec<f64>) -> Table {
        // lint:allow(SL001) — documented with_measure contract; test/bench helper for swapping columns
        assert_eq!(measure.len(), self.num_rows());
        Table {
            schema: self.schema.clone(),
            dicts: self.dicts.clone(),
            dims: self.dims.clone(),
            measure,
        }
    }

    /// Approximate in-memory footprint in bytes (dimension + measure data).
    pub fn data_bytes(&self) -> usize {
        self.dims.len() * 4 + self.measure.len() * 8
    }

    /// Deterministic 64-bit content fingerprint over schema, dictionaries,
    /// dimension codes and measure bits (see [`crate::fingerprint`]).
    ///
    /// Tables with identical contents fingerprint identically regardless of
    /// how they were constructed; any changed value, column name or code
    /// assignment changes the fingerprint with overwhelming probability.
    /// The service layer keys its result cache on this, so a re-registered
    /// but unchanged table keeps serving cached results.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::fingerprint::Fnv64::new();
        for name in self.schema.dim_names() {
            h.write_str(name);
        }
        h.write_str(self.schema.measure_name());
        for dict in &self.dicts {
            h.write_u64(dict.cardinality() as u64);
            for (_, value) in dict.iter() {
                h.write_str(value);
            }
        }
        h.write_u64(self.measure.len() as u64);
        for &code in &self.dims {
            h.write_u32(code);
        }
        for &m in &self.measure {
            h.write_f64(m);
        }
        h.finish()
    }
}

/// Incremental [`Table`] constructor.
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    dicts: Vec<Dictionary>,
    dims: Vec<u32>,
    measure: Vec<f64>,
}

impl TableBuilder {
    /// Append a row given as string values plus a measure.
    ///
    /// # Panics
    /// Panics if `values.len()` does not match the schema (arity mismatch).
    /// Use [`Self::try_push_row`] on untrusted input.
    pub fn push_row(&mut self, values: &[&str], m: f64) -> &mut Self {
        if let Err(e) = self.try_push_row(values, m) {
            crate::error::fail(e);
        }
        self
    }

    /// Fallible form of [`Self::push_row`]: rejects arity mismatches and
    /// dictionary overflow as typed errors. On error the builder is left
    /// unchanged.
    pub fn try_push_row(&mut self, values: &[&str], m: f64) -> Result<&mut Self, TableError> {
        if values.len() != self.schema.num_dims() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.num_dims(),
                found: values.len(),
            });
        }
        let before = self.dims.len();
        for (col, v) in values.iter().enumerate() {
            match self.dicts[col].try_intern(v) {
                Ok(code) => self.dims.push(code),
                Err(e) => {
                    self.dims.truncate(before);
                    return Err(e);
                }
            }
        }
        self.measure.push(m);
        Ok(self)
    }

    /// Append a row given directly as dictionary codes. Codes must already
    /// be interned (e.g. via [`Self::intern`]).
    ///
    /// # Panics
    /// Panics on arity mismatch or uninterned codes; use
    /// [`Self::try_push_coded_row`] to handle those as typed errors.
    pub fn push_coded_row(&mut self, codes: &[u32], m: f64) -> &mut Self {
        if let Err(e) = self.try_push_coded_row(codes, m) {
            crate::error::fail(e);
        }
        self
    }

    /// Fallible form of [`Self::push_coded_row`]. On error the builder is
    /// left unchanged.
    pub fn try_push_coded_row(&mut self, codes: &[u32], m: f64) -> Result<&mut Self, TableError> {
        if codes.len() != self.schema.num_dims() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.num_dims(),
                found: codes.len(),
            });
        }
        for (col, &c) in codes.iter().enumerate() {
            if (c as usize) >= self.dicts[col].cardinality() {
                return Err(TableError::UninternedCode {
                    column: col,
                    code: c,
                });
            }
        }
        self.dims.extend_from_slice(codes);
        self.measure.push(m);
        Ok(self)
    }

    /// Intern a value in column `col` without adding a row (lets generators
    /// pre-populate domains so codes are stable).
    pub fn intern(&mut self, col: usize, value: &str) -> u32 {
        self.dicts[col].intern(value)
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.measure.len()
    }

    /// True if no rows were appended yet.
    pub fn is_empty(&self) -> bool {
        self.measure.is_empty()
    }

    /// Finish and return the table.
    pub fn build(self) -> Table {
        Table {
            schema: self.schema,
            dicts: self.dicts,
            dims: self.dims,
            measure: self.measure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight_schema() -> Schema {
        Schema::new(vec!["Day", "Origin", "Destination"], "Delay")
    }

    fn small_table() -> Table {
        let mut b = Table::builder(flight_schema());
        b.push_row(&["Fri", "SF", "London"], 20.0);
        b.push_row(&["Fri", "London", "LA"], 16.0);
        b.push_row(&["Sun", "Tokyo", "Frankfurt"], 10.0);
        b.build()
    }

    #[test]
    fn rows_round_trip_through_dictionaries() {
        let t = small_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_dims(), 3);
        assert_eq!(t.decode(0, t.row(0)[0]), "Fri");
        assert_eq!(t.decode(1, t.row(1)[1]), "London");
        assert_eq!(t.decode(2, t.row(2)[2]), "Frankfurt");
        assert_eq!(t.measure(1), 16.0);
    }

    #[test]
    fn shared_values_share_codes() {
        let t = small_table();
        assert_eq!(t.row(0)[0], t.row(1)[0], "Fri appears twice");
        assert_eq!(t.dict(0).cardinality(), 2); // Fri, Sun
    }

    #[test]
    fn averages_and_rule_counts() {
        let t = small_table();
        assert!((t.avg_measure() - 46.0 / 3.0).abs() < 1e-12);
        // Domains: Day {Fri,Sun}=2, Origin {SF,London,Tokyo}=3, Dest 3.
        assert_eq!(t.possible_rule_count(), 3.0 * 4.0 * 4.0);
        assert_eq!(t.cardinalities(), vec![2, 3, 3]);
    }

    #[test]
    fn project_restricts_columns() {
        let t = small_table();
        let p = t.project(2);
        assert_eq!(p.num_dims(), 2);
        assert_eq!(p.num_rows(), 3);
        assert_eq!(p.row(0), &t.row(0)[..2]);
        assert_eq!(p.measures(), t.measures());
    }

    #[test]
    fn select_rows_subsets() {
        let t = small_table();
        let s = t.select_rows(&[2, 0]);
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.decode(0, s.row(0)[0]), "Sun");
        assert_eq!(s.measure(1), 20.0);
    }

    #[test]
    fn with_measure_replaces_column() {
        let t = small_table();
        let t2 = t.with_measure(vec![1.0, 2.0, 3.0]);
        assert_eq!(t2.measures(), &[1.0, 2.0, 3.0]);
        assert_eq!(t2.row(0), t.row(0));
    }

    #[test]
    fn coded_rows_must_be_interned() {
        let mut b = Table::builder(flight_schema());
        let day = b.intern(0, "Mon");
        let org = b.intern(1, "SF");
        let dst = b.intern(2, "Tokyo");
        b.push_coded_row(&[day, org, dst], 5.0);
        let t = b.build();
        assert_eq!(t.decode(0, t.row(0)[0]), "Mon");
    }

    #[test]
    #[should_panic(expected = "never interned")]
    fn uninterned_code_rejected() {
        let mut b = Table::builder(flight_schema());
        b.push_coded_row(&[0, 0, 0], 1.0);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn arity_checked() {
        let mut b = Table::builder(flight_schema());
        b.push_row(&["Fri", "SF"], 1.0);
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let a = small_table();
        let b = small_table();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same content, same hash");
        // Any data change moves the fingerprint.
        let c = a.with_measure(vec![20.0, 16.0, 10.5]);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = a.select_rows(&[0, 1]);
        assert_ne!(a.fingerprint(), d.fingerprint());
        // A schema rename moves it even with identical data.
        let mut builder = Table::builder(Schema::new(vec!["Day", "Origin", "Arrival"], "Delay"));
        builder.push_row(&["Fri", "SF", "London"], 20.0);
        builder.push_row(&["Fri", "London", "LA"], 16.0);
        builder.push_row(&["Sun", "Tokyo", "Frankfurt"], 10.0);
        assert_ne!(a.fingerprint(), builder.build().fingerprint());
    }

    #[test]
    fn try_push_row_reports_arity_and_leaves_builder_intact() {
        let mut b = Table::builder(flight_schema());
        let err = b.try_push_row(&["Fri", "SF"], 1.0).unwrap_err();
        assert!(matches!(
            err,
            TableError::ArityMismatch {
                expected: 3,
                found: 2
            }
        ));
        assert!(b.is_empty(), "failed push must not leave partial state");
        let err = b.try_push_coded_row(&[0, 0, 0], 1.0).unwrap_err();
        assert!(matches!(
            err,
            TableError::UninternedCode { column: 0, code: 0 }
        ));
        b.try_push_row(&["Fri", "SF", "London"], 2.0).unwrap();
        assert_eq!(b.len(), 1);
    }
}
