//! # sirum-table
//!
//! Columnar multidimensional table substrate for the SIRUM reproduction:
//! dictionary-encoded categorical dimension attributes, a numeric measure
//! column, CSV I/O, and deterministic synthetic generators matching the
//! shapes of the paper's evaluation datasets (Income, GDELT, SUSY, TLC) and
//! the worked flight-delay example.
//!
//! ```
//! use sirum_table::generators;
//!
//! let flights = generators::flights();
//! assert_eq!(flights.num_rows(), 14);
//! assert_eq!(flights.schema().dim_names(), &["Day", "Origin", "Destination"]);
//! ```

#![warn(missing_docs)]
#![allow(clippy::must_use_candidate)]

pub mod compress;
pub mod csv;
mod dict;
mod error;
pub mod fingerprint;
pub mod frame;
pub mod generators;
mod schema;
mod table;

pub use compress::{CompressedCol, Segment, MORSEL_ROWS};
pub use dict::Dictionary;
pub use error::TableError;
pub use frame::{
    ColScratch, ColSlice, Column, ColumnFormat, Compression, Frame, FrameBuilder, FrameView,
    COMPRESS_MIN_BYTES,
};
pub use schema::Schema;
pub use table::{Table, TableBuilder};
