//! Per-column dictionary encoding: categorical string values ↔ dense `u32`
//! codes. SIRUM's rule machinery works entirely on codes; strings only
//! appear at the I/O boundary.

use crate::error::TableError;
use std::collections::HashMap;

/// Bidirectional mapping between the distinct values of one categorical
/// column and dense codes `0..cardinality`.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    to_code: HashMap<String, u32>,
    to_value: Vec<String>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the code for `value`, inserting it if unseen.
    ///
    /// # Panics
    /// Panics if the `u32` code space is exhausted (more than `u32::MAX − 1`
    /// distinct values; `u32::MAX` is reserved for the wildcard). Use
    /// [`Dictionary::try_intern`] to handle that case as a typed error.
    pub fn intern(&mut self, value: &str) -> u32 {
        match self.try_intern(value) {
            Ok(code) => code,
            Err(e) => crate::error::fail(e),
        }
    }

    /// Fallible form of [`Dictionary::intern`]: returns
    /// [`TableError::DictionaryOverflow`] instead of panicking when the
    /// code space is exhausted.
    pub fn try_intern(&mut self, value: &str) -> Result<u32, TableError> {
        if let Some(&code) = self.to_code.get(value) {
            return Ok(code);
        }
        let code = next_code(self.to_value.len())?;
        self.to_code.insert(value.to_string(), code);
        self.to_value.push(value.to_string());
        Ok(code)
    }

    /// Code for `value` if already interned.
    pub fn code(&self, value: &str) -> Option<u32> {
        self.to_code.get(value).copied()
    }

    /// String value for `code`.
    ///
    /// # Panics
    /// Panics if the code was never interned.
    pub fn value(&self, code: u32) -> &str {
        &self.to_value[code as usize]
    }

    /// Number of distinct values (the active domain size `|dom(A)|`).
    pub fn cardinality(&self) -> usize {
        self.to_value.len()
    }

    /// Iterate over `(code, value)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.to_value
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v.as_str()))
    }
}

/// The code a dictionary of `cardinality` entries would assign next, or
/// [`TableError::DictionaryOverflow`] when the code space is exhausted.
///
/// `u32::MAX` is the rule wildcard sentinel (`sirum_core::rule::WILDCARD`
/// mirrors it): handing it out as a real value code would make that value
/// silently match every rule, so the boundary is `code < u32::MAX`, not
/// merely "fits in a `u32`". Kept as a free function so the boundary is
/// testable without interning four billion strings.
fn next_code(cardinality: usize) -> Result<u32, TableError> {
    match u32::try_from(cardinality) {
        Ok(code) if code < u32::MAX => Ok(code),
        _ => Err(TableError::DictionaryOverflow { cardinality }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("SF");
        let b = d.intern("London");
        assert_eq!(d.intern("SF"), a);
        assert_ne!(a, b);
        assert_eq!(d.cardinality(), 2);
    }

    #[test]
    fn codes_are_dense_and_reversible() {
        let mut d = Dictionary::new();
        for (i, v) in ["x", "y", "z"].iter().enumerate() {
            assert_eq!(d.intern(v), i as u32);
        }
        assert_eq!(d.value(1), "y");
        assert_eq!(d.code("z"), Some(2));
        assert_eq!(d.code("w"), None);
    }

    #[test]
    fn code_space_boundary_reserves_the_wildcard_sentinel() {
        // The last code a dictionary may hand out is u32::MAX - 1; the
        // sentinel slot itself and anything past it overflow with a typed
        // error rather than colliding with the wildcard.
        assert!(matches!(next_code(0), Ok(0)));
        assert!(matches!(
            next_code((u32::MAX - 1) as usize),
            Ok(c) if c == u32::MAX - 1
        ));
        assert!(matches!(
            next_code(u32::MAX as usize),
            Err(TableError::DictionaryOverflow { cardinality }) if cardinality == u32::MAX as usize
        ));
        assert!(matches!(
            next_code(u32::MAX as usize + 1),
            Err(TableError::DictionaryOverflow { .. })
        ));
    }

    #[test]
    fn iter_in_code_order() {
        let mut d = Dictionary::new();
        d.intern("b");
        d.intern("a");
        let pairs: Vec<(u32, &str)> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "b"), (1, "a")]);
    }
}
