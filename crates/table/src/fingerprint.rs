//! Content fingerprinting: a deterministic 64-bit hash of a table's schema
//! and data, used by the service layer to key result caches — two tables
//! with identical contents hash identically regardless of how they were
//! built, and any change to a value, code assignment or column name changes
//! the fingerprint with overwhelming probability.
//!
//! The hash is FNV-1a (64-bit), hand-rolled because the build is offline.
//! FNV is not collision-resistant against adversarial inputs; the cache key
//! is an optimization, not a security boundary, and a stale hit requires an
//! engineered collision between two tables registered in one process.

/// Incremental FNV-1a 64-bit hasher over framed primitive writes.
///
/// Each write is length- or width-framed (`write_bytes` prepends the byte
/// count) so that adjacent fields cannot alias each other, e.g.
/// `("ab", "c")` and `("a", "bc")` hash differently.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// Start a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Fold raw bytes into the state (unframed; used by the framed writers).
    fn write_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a length-framed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write_raw(bytes);
    }

    /// Fold a length-framed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Fold one `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Fold one `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Fold one `f64` by bit pattern (distinguishes `0.0` from `-0.0`;
    /// equal bit patterns are what cache identity needs).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Unframed reference vectors exercised through the raw writer.
        let mut h = Fnv64::new();
        h.write_raw(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write_raw(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write_raw(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn framing_prevents_field_aliasing() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn floats_hash_by_bits() {
        let mut a = Fnv64::new();
        a.write_f64(0.0);
        let mut b = Fnv64::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.write_f64(1.5);
        let mut d = Fnv64::new();
        d.write_f64(1.5);
        assert_eq!(c.finish(), d.finish());
    }
}
