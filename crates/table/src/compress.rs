//! Compressed columnar segments: the encoded form of a dimension column.
//!
//! The paper's scaling axis runs to 160M-row TLC samples; holding every
//! dimension as a raw `u32` column costs `4·n·d` bytes — 72 MB for the
//! 9-dimension 2M-row sample, 5.8 GB at 160M — when the dictionary
//! cardinalities need only a handful of bits per code. A [`CompressedCol`]
//! stores a column as a sequence of fixed-row-count **segments** (one per
//! build morsel), each independently encoded in whichever of three formats
//! a simple size heuristic finds smallest:
//!
//! * **Packed** — codes bit-packed into `u64` words at
//!   `ceil(log2(max_code + 1))` bits each (values may straddle word
//!   boundaries); the general case for low-cardinality dimensions.
//! * **RLE** — `(value, run)` runs for skewed or sorted segments where a
//!   few values dominate long stretches; stored with prefix-summed run
//!   ends so random access is a binary search, not a walk.
//! * **Raw** — the `u32` values verbatim; the fallback that guarantees
//!   compression is never worse than the uncompressed column (modulo
//!   per-segment bookkeeping).
//!
//! Segments decode independently: scans decode one segment at a time into
//! a reusable scratch buffer (the morsel-driven pattern — see
//! [`crate::frame::FrameView::morsel_bounds`]), spill paths serialize
//! segments without re-encoding, and point probes ([`CompressedCol::value_at`])
//! decode a single value in O(1) for packed segments and O(log runs) for
//! RLE ones.

/// Rows per build morsel: the segment granularity of compressed columns
/// and the chunk size of the streaming [`crate::frame::FrameBuilder`]. At
/// 64Ki rows a 9-dimension pending buffer is ~2.3 MB — small enough to
/// keep ingest memory flat, large enough that per-segment overhead
/// (offsets, format tags) is noise.
pub const MORSEL_ROWS: usize = 65_536;

/// One encoded run of a column: `MORSEL_ROWS` values (the last segment of
/// a column may be shorter) in whichever format the size heuristic chose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Verbatim `u32` codes (4 bytes/value) — the incompressible fallback.
    Raw(Box<[u32]>),
    /// Codes bit-packed little-endian into `u64` words, `bits` bits each;
    /// a value may straddle two words.
    Packed {
        /// Bits per value, `1..=32`, sized by the segment's maximum code.
        bits: u32,
        /// Number of values in the segment.
        len: u32,
        /// The packed words, `ceil(len · bits / 64)` of them.
        words: Box<[u64]>,
    },
    /// Run-length encoding: `values[k]` repeated for rows
    /// `[ends[k-1], ends[k])` (with `ends[-1] = 0`).
    Rle {
        /// One value per run.
        values: Box<[u32]>,
        /// Exclusive prefix-summed end row of each run; the last entry is
        /// the segment length.
        ends: Box<[u32]>,
    },
}

/// Bits needed to represent `max` (at least 1, so a constant-zero segment
/// still has a well-formed packed layout).
#[inline]
fn bits_for(max: u32) -> u32 {
    (32 - max.leading_zeros()).max(1)
}

/// Count the runs of `values` in one pass.
fn count_runs(values: &[u32]) -> usize {
    let mut runs = 0usize;
    let mut prev = None;
    for &v in values {
        if prev != Some(v) {
            runs += 1;
            prev = Some(v);
        }
    }
    runs
}

impl Segment {
    /// Encode `values` in the smallest of the three formats. The
    /// comparison is on exact payload bytes (`4·len` raw,
    /// `8·ceil(len·bits/64)` packed, `8·runs` RLE); ties prefer the
    /// cheaper-to-decode format (raw over packed, packed over RLE).
    pub fn encode(values: &[u32]) -> Segment {
        let len = values.len();
        if len == 0 {
            return Segment::Raw(Box::from([]));
        }
        let max = values.iter().copied().max().unwrap_or(0);
        let bits = bits_for(max);
        let raw_bytes = 4 * len;
        let packed_bytes = 8 * (len * bits as usize).div_ceil(64);
        let runs = count_runs(values);
        let rle_bytes = 8 * runs;
        if rle_bytes < packed_bytes.min(raw_bytes) {
            let mut vals = Vec::with_capacity(runs);
            let mut ends = Vec::with_capacity(runs);
            for (i, &v) in values.iter().enumerate() {
                if vals.last() == Some(&v) {
                    continue;
                }
                if i > 0 {
                    ends.push(i as u32);
                }
                vals.push(v);
            }
            ends.push(len as u32);
            Segment::Rle {
                values: vals.into_boxed_slice(),
                ends: ends.into_boxed_slice(),
            }
        } else if packed_bytes < raw_bytes {
            let mut words = vec![0u64; (len * bits as usize).div_ceil(64)];
            for (i, &v) in values.iter().enumerate() {
                let bit = i * bits as usize;
                let (w, off) = (bit / 64, (bit % 64) as u32);
                words[w] |= u64::from(v) << off;
                if off + bits > 64 {
                    words[w + 1] |= u64::from(v) >> (64 - off);
                }
            }
            Segment::Packed {
                bits,
                len: len as u32,
                words: words.into_boxed_slice(),
            }
        } else {
            Segment::Raw(values.into())
        }
    }

    /// Number of values in the segment.
    pub fn len(&self) -> usize {
        match self {
            Segment::Raw(v) => v.len(),
            Segment::Packed { len, .. } => *len as usize,
            Segment::Rle { ends, .. } => ends.last().map_or(0, |&e| e as usize),
        }
    }

    /// True when the segment holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes of the encoded form (what the size heuristic and the
    /// block store's budget accounting charge).
    pub fn encoded_bytes(&self) -> usize {
        match self {
            Segment::Raw(v) => 4 * v.len(),
            Segment::Packed { words, .. } => 8 * words.len(),
            Segment::Rle { values, .. } => 8 * values.len(),
        }
    }

    /// The value at row `i` of this segment. O(1) for raw and packed
    /// segments, O(log runs) for RLE.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn value_at(&self, i: usize) -> u32 {
        match self {
            Segment::Raw(v) => v[i],
            Segment::Packed { bits, len, words } => {
                // lint:allow(SL001) — same range contract as `[u32]` indexing
                assert!(i < *len as usize, "segment row out of range");
                let bit = i * *bits as usize;
                let (w, off) = (bit / 64, (bit % 64) as u32);
                let mut v = words[w] >> off;
                if off + bits > 64 {
                    v |= words[w + 1] << (64 - off);
                }
                (v & mask(*bits)) as u32
            }
            Segment::Rle { values, ends } => {
                let k = ends.partition_point(|&e| e as usize <= i);
                values[k]
            }
        }
    }

    /// Append rows `[start, start + n)` of this segment to `out`.
    ///
    /// # Panics
    /// Panics when the range exceeds the segment.
    pub fn decode_range_into(&self, start: usize, n: usize, out: &mut Vec<u32>) {
        // lint:allow(SL001) — same range contract as `[u32]` slicing
        assert!(start + n <= self.len(), "segment range out of bounds");
        match self {
            Segment::Raw(v) => out.extend_from_slice(&v[start..start + n]),
            Segment::Packed { bits, words, .. } => {
                let m = mask(*bits);
                out.reserve(n);
                let mut bit = start * *bits as usize;
                for _ in 0..n {
                    let (w, off) = (bit / 64, (bit % 64) as u32);
                    let mut v = words[w] >> off;
                    if off + bits > 64 {
                        v |= words[w + 1] << (64 - off);
                    }
                    out.push((v & m) as u32);
                    bit += *bits as usize;
                }
            }
            Segment::Rle { values, ends } => {
                out.reserve(n);
                let mut k = ends.partition_point(|&e| e as usize <= start);
                let mut row = start;
                let stop = start + n;
                while row < stop {
                    let run_end = (ends[k] as usize).min(stop);
                    out.extend(std::iter::repeat_n(values[k], run_end - row));
                    row = run_end;
                    k += 1;
                }
            }
        }
    }
}

#[inline]
fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// A dimension column stored as a sequence of independently encoded
/// [`Segment`]s with prefix-summed row offsets. All columns of one frame
/// share the same segmentation (they are flushed together, morsel by
/// morsel), which is what lets scans decode a whole morsel of every
/// column at once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedCol {
    segments: Box<[Segment]>,
    /// `offsets[k]` = first row of segment `k`; `offsets[segments.len()]`
    /// = column length.
    offsets: Box<[usize]>,
}

impl CompressedCol {
    /// Assemble a column from encoded segments (the spill-decode path and
    /// the [`crate::frame::FrameBuilder`] flush path).
    pub fn from_segments(segments: Vec<Segment>) -> CompressedCol {
        let mut offsets = Vec::with_capacity(segments.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for seg in &segments {
            total += seg.len();
            offsets.push(total);
        }
        CompressedCol {
            segments: segments.into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
        }
    }

    /// Encode a whole column in `morsel_rows`-sized segments.
    pub fn from_values(values: &[u32], morsel_rows: usize) -> CompressedCol {
        let morsel = morsel_rows.max(1);
        CompressedCol::from_segments(values.chunks(morsel).map(Segment::encode).collect())
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The encoded segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Segment start offsets (`segments().len() + 1` entries; the last is
    /// the column length). Every column of one frame shares these — they
    /// are the frame's morsel boundaries.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Total encoded payload bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.segments.iter().map(Segment::encoded_bytes).sum()
    }

    /// Encoded payload bytes of the segments overlapping rows
    /// `[start, start + n)` — the budget charge of a range view over this
    /// column (whole overlapping segments; boundary segments are not
    /// pro-rated because a spilled range carries them re-encoded whole).
    pub fn range_encoded_bytes(&self, start: usize, n: usize) -> usize {
        let stop = start + n;
        self.segments
            .iter()
            .zip(self.offsets.windows(2))
            .filter(|(_, w)| w[1] > start && w[0] < stop)
            .map(|(seg, _)| seg.encoded_bytes())
            .sum()
    }

    /// The value at row `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn value_at(&self, i: usize) -> u32 {
        let k = self.offsets.partition_point(|&o| o <= i) - 1;
        self.segments[k].value_at(i - self.offsets[k])
    }

    /// Append rows `[start, start + n)` to `out`, decoding one segment at
    /// a time.
    ///
    /// # Panics
    /// Panics when the range exceeds the column.
    pub fn decode_range_into(&self, start: usize, n: usize, out: &mut Vec<u32>) {
        // lint:allow(SL001) — same range contract as `[u32]` slicing
        assert!(start + n <= self.len(), "column range out of bounds");
        if n == 0 {
            return;
        }
        let mut k = self.offsets.partition_point(|&o| o <= start) - 1;
        let mut row = start;
        let stop = start + n;
        while row < stop {
            let seg_start = self.offsets[k];
            let local = row - seg_start;
            let take = (self.offsets[k + 1] - row).min(stop - row);
            self.segments[k].decode_range_into(local, take, out);
            row += take;
            k += 1;
        }
    }

    /// Re-segment rows `[start, start + n)` as a standalone segment list:
    /// interior segments are carried whole, boundary segments are decoded
    /// and re-encoded over just the in-range rows. This is how a range
    /// view (one partition of a frame) spills compressed without dragging
    /// out-of-range rows along.
    pub fn slice_segments(&self, start: usize, n: usize) -> Vec<Segment> {
        // lint:allow(SL001) — same range contract as `[u32]` slicing
        assert!(start + n <= self.len(), "column range out of bounds");
        let stop = start + n;
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for (seg, w) in self.segments.iter().zip(self.offsets.windows(2)) {
            let (seg_start, seg_stop) = (w[0], w[1]);
            if seg_stop <= start || seg_start >= stop || seg_start == seg_stop {
                continue;
            }
            if start <= seg_start && seg_stop <= stop {
                out.push(seg.clone());
            } else {
                let lo = start.max(seg_start) - seg_start;
                let hi = stop.min(seg_stop) - seg_start;
                scratch.clear();
                seg.decode_range_into(lo, hi - lo, &mut scratch);
                out.push(Segment::encode(&scratch));
            }
        }
        out
    }

    /// Per-format segment counts `(raw, packed, rle)` and the maximum
    /// packed bit width — the summary [`crate::frame::ColumnFormat`] and
    /// `explain()` report.
    pub fn format_counts(&self) -> (usize, usize, usize, u32) {
        let (mut raw, mut packed, mut rle, mut max_bits) = (0usize, 0usize, 0usize, 0u32);
        for seg in self.segments.iter() {
            match seg {
                Segment::Raw(_) => raw += 1,
                Segment::Packed { bits, .. } => {
                    packed += 1;
                    max_bits = max_bits.max(*bits);
                }
                Segment::Rle { .. } => rle += 1,
            }
        }
        (raw, packed, rle, max_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_round_trip(values: &[u32], morsel: usize) {
        let col = CompressedCol::from_values(values, morsel);
        assert_eq!(col.len(), values.len());
        let mut out = Vec::new();
        col.decode_range_into(0, values.len(), &mut out);
        assert_eq!(out, values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(col.value_at(i), v, "value_at({i})");
        }
        // Every sub-range decodes correctly too.
        let probes = [
            (0, values.len() / 2),
            (values.len() / 3, values.len() / 2),
            (values.len().saturating_sub(1), values.len().min(1)),
            (0, 0),
        ];
        for &(s, n) in &probes {
            if s + n <= values.len() {
                out.clear();
                col.decode_range_into(s, n, &mut out);
                assert_eq!(out, &values[s..s + n], "range ({s}, {n})");
            }
        }
    }

    #[test]
    fn low_cardinality_packs() {
        let values: Vec<u32> = (0..10_000).map(|i| (i * 7) % 13).collect();
        let col = CompressedCol::from_values(&values, 4096);
        let (_, packed, _, bits) = col.format_counts();
        assert!(packed > 0, "13 distinct values must bit-pack");
        assert_eq!(bits, 4);
        assert!(col.encoded_bytes() < 4 * values.len() / 4, "≤ 4 bits/value");
        check_round_trip(&values, 4096);
    }

    #[test]
    fn constant_and_sorted_segments_rle() {
        let mut values = vec![3u32; 5000];
        values.extend(std::iter::repeat_n(9u32, 5000));
        let col = CompressedCol::from_values(&values, 2048);
        let (_, _, rle, _) = col.format_counts();
        assert!(rle > 0, "long runs must RLE");
        assert!(col.encoded_bytes() < 200);
        check_round_trip(&values, 2048);
    }

    #[test]
    fn high_cardinality_falls_back_to_raw() {
        // Random-ish 32-bit values: packing needs 32 bits (same as raw),
        // runs are all length 1 — raw must win.
        let values: Vec<u32> = (0..3000)
            .map(|i: u32| i.wrapping_mul(0x9E37_79B9) | 0x8000_0000)
            .collect();
        let col = CompressedCol::from_values(&values, 1024);
        let (raw, packed, rle, _) = col.format_counts();
        assert_eq!((packed, rle), (0, 0));
        assert!(raw > 0);
        check_round_trip(&values, 1024);
    }

    #[test]
    fn wildcard_sentinel_round_trips() {
        let values = vec![0, u32::MAX, 5, u32::MAX, u32::MAX];
        check_round_trip(&values, 2);
    }

    #[test]
    fn values_straddle_word_boundaries() {
        // 5 bits/value: value 12 starts at bit 60 and straddles words.
        let values: Vec<u32> = (0..200).map(|i| (i % 31) as u32).collect();
        let col = CompressedCol::from_values(&values, 200);
        match &col.segments()[0] {
            Segment::Packed { bits, .. } => assert_eq!(*bits, 5),
            other => panic!("expected packed, got {other:?}"),
        }
        check_round_trip(&values, 200);
    }

    #[test]
    fn empty_and_tiny_columns() {
        check_round_trip(&[], 16);
        check_round_trip(&[42], 16);
        let col = CompressedCol::from_values(&[], 16);
        assert!(col.is_empty());
        assert_eq!(col.range_encoded_bytes(0, 0), 0);
    }

    #[test]
    fn slice_segments_reencodes_boundaries_only() {
        let values: Vec<u32> = (0..1000).map(|i| i % 7).collect();
        let col = CompressedCol::from_values(&values, 100);
        // [150, 750): partial head (seg 1), whole segs 2..=6, partial tail.
        let sliced = CompressedCol::from_segments(col.slice_segments(150, 600));
        assert_eq!(sliced.len(), 600);
        let mut out = Vec::new();
        sliced.decode_range_into(0, 600, &mut out);
        assert_eq!(out, &values[150..750]);
        // Interior segments are carried whole (same encoded form).
        assert_eq!(sliced.segments()[1], col.segments()[2]);
        // Aligned slices carry every segment verbatim.
        let aligned = col.slice_segments(100, 300);
        assert_eq!(aligned.as_slice(), &col.segments()[1..4]);
    }

    #[test]
    fn range_encoded_bytes_counts_overlapping_segments() {
        let values: Vec<u32> = (0..400).map(|i| i % 3).collect();
        let col = CompressedCol::from_values(&values, 100);
        let per_seg = col.segments()[0].encoded_bytes();
        assert_eq!(col.range_encoded_bytes(0, 400), col.encoded_bytes());
        assert_eq!(col.range_encoded_bytes(50, 100), 2 * per_seg);
        assert_eq!(col.range_encoded_bytes(100, 100), per_seg);
    }

    #[test]
    fn heuristic_never_beats_raw_budget() {
        // Whatever the shape, the chosen format is never larger than raw.
        for values in [
            (0..500).map(|i| i % 2).collect::<Vec<u32>>(),
            (0..500).collect(),
            vec![7; 500],
            (0..500).map(|i: u32| i.wrapping_mul(0x85EB_CA6B)).collect(),
        ] {
            let col = CompressedCol::from_values(&values, 128);
            assert!(col.encoded_bytes() <= 4 * values.len());
        }
    }
}
