//! Typed errors for the table substrate: everything a caller can trigger
//! with bad input at the I/O boundary (CSV parsing, schema construction,
//! row ingestion) surfaces as a [`TableError`] instead of a panic.
//!
//! The hierarchy is hand-rolled in the `thiserror` style (the build is
//! offline, so no derive crate): each variant carries the offending field
//! or location, `Display` renders a one-line human message, and
//! `std::error::Error::source` exposes wrapped I/O errors.

use std::fmt;

/// An error raised by the table layer (CSV I/O, schema, dictionaries).
#[derive(Debug)]
pub enum TableError {
    /// The input had no content at all (e.g. a CSV without a header line).
    EmptyInput,
    /// A schema needs at least one dimension attribute besides the measure.
    NoDimensions,
    /// Two dimension attributes share a name.
    DuplicateDimension {
        /// The repeated attribute name.
        name: String,
    },
    /// A data line's field count does not match the header.
    RaggedLine {
        /// 1-based line number in the input (header is line 1).
        line: usize,
        /// Fields the header promises (dimensions + measure).
        expected: usize,
        /// Fields actually found.
        found: usize,
    },
    /// The measure column held a value that does not parse as a number.
    BadMeasure {
        /// 1-based line number in the input.
        line: usize,
        /// The offending raw value.
        value: String,
    },
    /// A quoted CSV field was opened but never closed before the input
    /// ended (RFC-4180 quoting).
    UnclosedQuote {
        /// 1-based line number where the quoted field started.
        line: usize,
    },
    /// A row's arity does not match the schema.
    ArityMismatch {
        /// Dimensions the schema defines.
        expected: usize,
        /// Values supplied for the row.
        found: usize,
    },
    /// A coded row referenced a dictionary code that was never interned.
    UninternedCode {
        /// Dimension column index.
        column: usize,
        /// The unknown code.
        code: u32,
    },
    /// A dictionary exhausted the `u32` code space (`u32::MAX` is reserved
    /// for the wildcard).
    DictionaryOverflow {
        /// Distinct values already interned when the overflow occurred.
        cardinality: usize,
    },
    /// An underlying I/O failure while reading or writing.
    Io(std::io::Error),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::EmptyInput => write!(f, "empty input: no header line"),
            TableError::NoDimensions => {
                write!(
                    f,
                    "need at least one dimension attribute besides the measure"
                )
            }
            TableError::DuplicateDimension { name } => {
                write!(f, "duplicate dimension attribute name {name:?}")
            }
            TableError::RaggedLine {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected {expected} fields, found {found}"),
            TableError::BadMeasure { line, value } => {
                write!(f, "line {line}: measure value {value:?} is not a number")
            }
            TableError::UnclosedQuote { line } => write!(
                f,
                "line {line}: quoted field is never closed before the input ends"
            ),
            TableError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row has {found} values but the schema has {expected} dimensions"
                )
            }
            TableError::UninternedCode { column, code } => {
                write!(f, "code {code} was never interned in column {column}")
            }
            TableError::DictionaryOverflow { cardinality } => write!(
                f,
                "dictionary overflow: {cardinality} distinct values exhaust the u32 code space"
            ),
            TableError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e)
    }
}

/// Abort with `err` rendered through its `Display` form.
///
/// This is the single panic bridge that keeps the crate's infallible
/// convenience constructors (used by generators and tests on trusted input)
/// available while every fallible path returns [`TableError`].
#[track_caller]
pub(crate) fn fail(err: TableError) -> ! {
    panic!("{err}") // lint:allow(SL001) — sole bridge for infallible wrappers
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_names_the_offending_field() {
        let e = TableError::RaggedLine {
            line: 3,
            expected: 4,
            found: 2,
        };
        assert_eq!(e.to_string(), "line 3: expected 4 fields, found 2");
        let e = TableError::DuplicateDimension { name: "Day".into() };
        assert!(e.to_string().contains("Day"));
        let e = TableError::BadMeasure {
            line: 7,
            value: "abc".into(),
        };
        assert!(e.to_string().contains("abc") && e.to_string().contains('7'));
    }

    #[test]
    fn io_errors_expose_a_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = TableError::from(io);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
