//! The columnar, `Arc`-shared mining frame: the one in-memory
//! representation the whole stack scans.
//!
//! A [`Table`] stores its dimension codes row-major, which is the right
//! layout for building and CSV I/O but the wrong one for the scan-dominated
//! mining workload: every greedy iteration re-aggregates all rows, and the
//! repeated-query setting means the same table is scanned across many
//! requests. A [`Frame`] transposes the table once into struct-of-arrays
//! form — one `u32` column per dimension attribute plus the `f64` measure
//! column, each behind an `Arc` — so that
//!
//! * every scan walks contiguous, type-homogeneous memory,
//! * partitions are [`FrameView`] *range views* over the shared columns
//!   (an `Arc` bump and two offsets — no per-row boxing, no copying), and
//! * concurrent jobs mining the same registered table share one set of
//!   buffers.
//!
//! A dimension column comes in two physical representations behind the
//! same view API: **raw** (one contiguous `Arc<[u32]>`, the layout small
//! tables keep) or **compressed** (a [`CompressedCol`] sequence of
//! bit-packed/RLE/raw [`crate::compress::Segment`]s, chosen per segment by
//! a size heuristic — see [`crate::compress`]). Compressed frames are
//! scanned **morsel-driven**: [`FrameView::morsel_bounds`] yields
//! segment-aligned row ranges and [`FrameView::morsel_cols`] decodes one
//! morsel of every column into a reusable [`ColScratch`], so a scan over a
//! raw frame degenerates to exactly the old single-range column borrow
//! (zero overhead) while a compressed frame is decoded 64Ki rows at a
//! time. [`FrameBuilder`] builds compressed frames incrementally, encoding
//! each morsel as rows arrive instead of materializing whole `Vec<u32>`
//! columns first.
//!
//! The frame carries the source table's content fingerprint so downstream
//! caches stay content-addressed without re-hashing.

use crate::compress::{CompressedCol, Segment, MORSEL_ROWS};
use crate::table::Table;
use std::sync::{Arc, OnceLock};

/// A shared, immutable slice of one column: an `Arc`'d buffer plus a range.
/// Cloning is an `Arc` bump; deref yields the in-range `&[T]`.
#[derive(Debug, Clone)]
pub struct ColSlice<T> {
    data: Arc<[T]>,
    start: usize,
    len: usize,
}

impl<T> ColSlice<T> {
    /// View an entire shared buffer.
    pub fn full(data: Arc<[T]>) -> Self {
        let len = data.len();
        ColSlice {
            data,
            start: 0,
            len,
        }
    }

    /// Narrow this slice to `[start, start + len)` of *this* slice.
    ///
    /// # Panics
    /// Panics if the range exceeds the current slice.
    pub fn slice(&self, start: usize, len: usize) -> Self {
        // lint:allow(SL001) — documented range contract, mirrors `[T]` slicing
        assert!(start + len <= self.len, "ColSlice range out of bounds");
        ColSlice {
            data: Arc::clone(&self.data),
            start: self.start + start,
            len,
        }
    }

    /// Number of elements in range.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The in-range elements.
    pub fn as_slice(&self) -> &[T] {
        &self.data[self.start..self.start + self.len]
    }
}

impl<T> std::ops::Deref for ColSlice<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> From<Vec<T>> for ColSlice<T> {
    fn from(v: Vec<T>) -> Self {
        ColSlice::full(Arc::from(v))
    }
}

/// One dimension column's physical representation.
#[derive(Debug, Clone)]
pub enum Column {
    /// One contiguous shared buffer — the layout of small frames, directly
    /// borrowable as `&[u32]`.
    Raw(Arc<[u32]>),
    /// Encoded segments — decoded morsel-by-morsel into scratch buffers.
    Compressed(Arc<CompressedCol>),
}

impl Column {
    #[inline]
    fn value_at(&self, i: usize) -> u32 {
        match self {
            Column::Raw(a) => a[i],
            Column::Compressed(c) => c.value_at(i),
        }
    }
}

/// When a frame built from a [`Table`] compresses its dimension columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Compress when the raw dimension columns would exceed
    /// [`COMPRESS_MIN_BYTES`] — small interactive tables keep the
    /// zero-decode raw layout, multi-million-row tables compress.
    #[default]
    Auto,
    /// Always compress (tests and memory-budget runs).
    Always,
    /// Never compress (the raw reference representation).
    Never,
}

/// The [`Compression::Auto`] threshold on raw dimension-column bytes
/// (`4·n·d`): below this the whole frame fits comfortably in cache-adjacent
/// memory and decode work would buy nothing.
pub const COMPRESS_MIN_BYTES: usize = 8 << 20;

/// Per-column format summary (what `explain()` reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnFormat {
    /// One contiguous raw `u32` buffer.
    Raw,
    /// Segment-compressed column.
    Compressed {
        /// Segments stored verbatim (incompressible).
        raw_segments: usize,
        /// Bit-packed segments.
        packed_segments: usize,
        /// Run-length-encoded segments.
        rle_segments: usize,
        /// Widest packed bit width across segments (0 when none packed).
        max_bits: u32,
        /// Total encoded payload bytes.
        bytes: usize,
    },
}

impl std::fmt::Display for ColumnFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ColumnFormat::Raw => write!(f, "raw"),
            ColumnFormat::Compressed {
                raw_segments,
                packed_segments,
                rle_segments,
                max_bits,
                ..
            } => {
                if packed_segments > 0 && rle_segments == 0 && raw_segments == 0 {
                    write!(f, "packed{max_bits}")
                } else if rle_segments > 0 && packed_segments == 0 && raw_segments == 0 {
                    write!(f, "rle")
                } else if raw_segments > 0 && packed_segments == 0 && rle_segments == 0 {
                    write!(f, "raw-seg")
                } else if packed_segments > 0 {
                    write!(f, "mixed(packed{max_bits}:{packed_segments},rle:{rle_segments},raw:{raw_segments})")
                } else {
                    write!(f, "mixed(rle:{rle_segments},raw:{raw_segments})")
                }
            }
        }
    }
}

/// The columnar frame: one dimension-code column per attribute plus the
/// measure column, all `Arc`-shared. Built once per table (at registration
/// / preparation time) and scanned by every request.
///
/// Cloning a `Frame` bumps `d + 1` `Arc`s; no data moves.
#[derive(Debug, Clone)]
pub struct Frame {
    cols: Arc<[Column]>,
    measure: Arc<[f64]>,
    rows: usize,
    /// Per-dimension dictionary cardinalities `|dom(Aⱼ)|` — the bit-width
    /// metadata packed rule codes are derived from. Stamped from the source
    /// table's dictionaries by [`Frame::from_table`]; carried through spill
    /// round-trips by [`Frame::from_columns_with_cards`] so a decoded block
    /// reproduces the exact packed layout of the frame it was encoded from.
    cards: Arc<[u32]>,
    /// Content fingerprint: stamped from the source table by
    /// [`Frame::from_table`]; computed lazily (first [`Self::fingerprint`]
    /// call) for frames assembled from raw columns, so the spill-decode
    /// path never pays a hash pass nobody reads.
    fingerprint: OnceLock<u64>,
}

impl Frame {
    /// Transpose `table` into raw columnar form (one pass per column) and
    /// stamp it with the table's content fingerprint. Equivalent to
    /// [`Frame::from_table_with`] under [`Compression::Never`].
    pub fn from_table(table: &Table) -> Frame {
        let d = table.num_dims();
        let n = table.num_rows();
        let cols: Vec<Column> = (0..d)
            .map(|j| {
                let mut col = Vec::with_capacity(n);
                col.extend(table.rows().map(|row| row[j]));
                Column::Raw(Arc::from(col))
            })
            .collect();
        let fingerprint = OnceLock::new();
        let _ = fingerprint.set(table.fingerprint());
        Frame {
            cols: Arc::from(cols),
            measure: Arc::from(table.measures().to_vec()),
            rows: n,
            cards: Arc::from(table_cards(table)),
            fingerprint,
        }
    }

    /// Transpose `table` under an explicit [`Compression`] policy. The
    /// compressed path streams rows through a [`FrameBuilder`], encoding
    /// one morsel at a time — peak transient memory is one pending morsel
    /// (`d · MORSEL_ROWS · 4` bytes), not the full raw columns.
    pub fn from_table_with(table: &Table, compression: Compression) -> Frame {
        let d = table.num_dims();
        let n = table.num_rows();
        let compress = match compression {
            Compression::Never => false,
            Compression::Always => true,
            Compression::Auto => n.saturating_mul(d).saturating_mul(4) >= COMPRESS_MIN_BYTES,
        };
        if !compress {
            return Frame::from_table(table);
        }
        let mut builder = FrameBuilder::new(d);
        for (i, row) in table.rows().enumerate() {
            builder.push_row(row, table.measure(i));
        }
        let frame = builder.finish_with_cards(table_cards(table));
        let _ = frame.fingerprint.set(table.fingerprint());
        frame
    }

    /// Assemble a frame from raw columns (the spill-decode path). Every
    /// dimension column must have one entry per measure value. The
    /// fingerprint — computed only if someone asks for it — covers the raw
    /// codes and measure bits: it identifies the *data*, not any schema or
    /// dictionary.
    ///
    /// # Panics
    /// Panics on ragged columns.
    pub fn from_columns(cols: Vec<Vec<u32>>, measure: Vec<f64>) -> Frame {
        // Without dictionary metadata the best cardinality bound is the
        // observed maximum code + 1 per column (saturating: a column that
        // contains the wildcard sentinel u32::MAX simply gets a cardinality
        // too wide to pack, which disables packing rather than corrupting it).
        let cards: Vec<u32> = cols
            .iter()
            .map(|c| c.iter().copied().max().map_or(0, |m| m.saturating_add(1)))
            .collect();
        Frame::from_columns_with_cards(cols, measure, cards)
    }

    /// [`Frame::from_columns`], but with explicit per-dimension
    /// cardinalities — the spill-decode path uses this to reproduce the
    /// packed-code layout of the frame the block was encoded from, which can
    /// be wider than the codes a single partition happens to contain.
    ///
    /// # Panics
    /// Panics on ragged columns or a cardinality count mismatch.
    pub fn from_columns_with_cards(
        cols: Vec<Vec<u32>>,
        measure: Vec<f64>,
        cards: Vec<u32>,
    ) -> Frame {
        let n = measure.len();
        // lint:allow(SL001) — constructor contract; ragged columns are a logic error
        assert!(
            cols.iter().all(|c| c.len() == n),
            "every dimension column must have one code per row"
        );
        // lint:allow(SL001) — constructor contract, same class as the ragged check
        assert!(
            cards.len() == cols.len(),
            "one cardinality per dimension column"
        );
        Frame {
            cols: Arc::from(
                cols.into_iter()
                    .map(|c| Column::Raw(Arc::from(c)))
                    .collect::<Vec<_>>(),
            ),
            measure: Arc::from(measure),
            rows: n,
            cards: Arc::from(cards),
            fingerprint: OnceLock::new(),
        }
    }

    /// Assemble a frame from already-encoded compressed columns (the
    /// compressed spill-decode path — segments round-trip without being
    /// re-encoded).
    ///
    /// # Panics
    /// Panics on ragged columns or a cardinality count mismatch.
    pub fn from_compressed_columns_with_cards(
        cols: Vec<CompressedCol>,
        measure: Vec<f64>,
        cards: Vec<u32>,
    ) -> Frame {
        let n = measure.len();
        // lint:allow(SL001) — constructor contract; ragged columns are a logic error
        assert!(
            cols.iter().all(|c| c.len() == n),
            "every dimension column must have one code per row"
        );
        // lint:allow(SL001) — constructor contract, same class as the ragged check
        assert!(
            cards.len() == cols.len(),
            "one cardinality per dimension column"
        );
        Frame {
            cols: Arc::from(
                cols.into_iter()
                    .map(|c| Column::Compressed(Arc::new(c)))
                    .collect::<Vec<_>>(),
            ),
            measure: Arc::from(measure),
            rows: n,
            cards: Arc::from(cards),
            fingerprint: OnceLock::new(),
        }
    }

    /// Number of rows `n`.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of dimension attributes `d`.
    pub fn num_dims(&self) -> usize {
        self.cols.len()
    }

    /// The full column of dimension attribute `j` as a contiguous slice.
    /// Only raw columns have one; compressed-frame scans must go through
    /// [`FrameView::morsel_cols`] (or [`Self::gather_row`] for point
    /// probes).
    ///
    /// # Panics
    /// Panics when column `j` is compressed.
    pub fn col(&self, j: usize) -> &[u32] {
        match &self.cols[j] {
            Column::Raw(a) => a,
            Column::Compressed(_) => {
                // lint:allow(SL001) — misuse of the raw-only accessor is a logic error; scans use morsel_cols
                panic!("dimension column {j} is compressed; decode via FrameView::morsel_cols")
            }
        }
    }

    /// Column `j`'s physical representation.
    pub fn column(&self, j: usize) -> &Column {
        &self.cols[j]
    }

    /// True when any dimension column is stored compressed.
    pub fn is_compressed(&self) -> bool {
        self.cols.iter().any(|c| matches!(c, Column::Compressed(_)))
    }

    /// Per-column format summaries (what `explain()` reports).
    pub fn column_formats(&self) -> Vec<ColumnFormat> {
        self.cols
            .iter()
            .map(|c| match c {
                Column::Raw(_) => ColumnFormat::Raw,
                Column::Compressed(c) => {
                    let (raw, packed, rle, max_bits) = c.format_counts();
                    ColumnFormat::Compressed {
                        raw_segments: raw,
                        packed_segments: packed,
                        rle_segments: rle,
                        max_bits,
                        bytes: c.encoded_bytes(),
                    }
                }
            })
            .collect()
    }

    /// In-memory bytes of the dimension columns for rows
    /// `[start, start + n)`: `4·n` per raw column, encoded payload bytes of
    /// the overlapping segments per compressed column. This is what spill
    /// budget accounting charges for a range view.
    pub fn dim_bytes_in_range(&self, start: usize, n: usize) -> usize {
        self.cols
            .iter()
            .map(|c| match c {
                Column::Raw(_) => 4 * n,
                Column::Compressed(c) => c.range_encoded_bytes(start, n),
            })
            .sum()
    }

    /// In-memory bytes of all dimension columns.
    pub fn dim_bytes(&self) -> usize {
        self.dim_bytes_in_range(0, self.rows)
    }

    /// Shared morsel boundaries of the frame's columns: segment start
    /// offsets when compressed (all columns are flushed together, so they
    /// segment identically), `None` for raw frames (one whole-frame
    /// morsel).
    fn segment_offsets(&self) -> Option<&[usize]> {
        self.cols.iter().find_map(|c| match c {
            Column::Compressed(c) => Some(c.offsets()),
            Column::Raw(_) => None,
        })
    }

    /// The full measure column.
    pub fn measures(&self) -> &[f64] {
        &self.measure
    }

    /// Per-dimension dictionary cardinalities (bit-width metadata for the
    /// packed rule-code layout).
    pub fn cards(&self) -> &[u32] {
        &self.cards
    }

    /// The cardinalities as a shared buffer (an `Arc` bump).
    pub fn cards_arc(&self) -> Arc<[u32]> {
        Arc::clone(&self.cards)
    }

    /// The measure column as a shared slice (an `Arc` bump).
    pub fn measure_slice(&self) -> ColSlice<f64> {
        ColSlice::full(Arc::clone(&self.measure))
    }

    /// Content fingerprint: carried from the source table, or computed on
    /// first call (and cached) for column-assembled frames. Covers the
    /// decoded codes, so raw and compressed frames over the same data
    /// fingerprint identically.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h = crate::fingerprint::Fnv64::new();
            h.write_u64(self.cols.len() as u64);
            h.write_u64(self.rows as u64);
            let mut buf = Vec::new();
            for col in self.cols.iter() {
                match col {
                    Column::Raw(a) => {
                        for &code in a.iter() {
                            h.write_u32(code);
                        }
                    }
                    Column::Compressed(c) => {
                        for seg in c.segments() {
                            buf.clear();
                            seg.decode_range_into(0, seg.len(), &mut buf);
                            for &code in &buf {
                                h.write_u32(code);
                            }
                        }
                    }
                }
            }
            for &m in self.measure.iter() {
                h.write_f64(m);
            }
            h.finish()
        })
    }

    /// A view over the whole frame.
    pub fn view(&self) -> FrameView {
        FrameView {
            frame: self.clone(),
            start: 0,
            len: self.rows,
        }
    }

    /// Split the frame into exactly `partitions` contiguous range views
    /// using the same chunking as the dataflow engine's `parallelize`
    /// (`⌈n / partitions⌉` rows per chunk, trailing views possibly empty) —
    /// so a columnar dataset built from these views places every row in the
    /// same partition, at the same offset, as the row-major path it
    /// replaces. This is what keeps the two representations bit-identical.
    pub fn partition_views(&self, partitions: usize) -> Vec<FrameView> {
        let partitions = partitions.max(1);
        let n = self.rows;
        let chunk = n.div_ceil(partitions).max(1);
        let mut views = Vec::with_capacity(partitions);
        let mut start = 0usize;
        for _ in 0..partitions {
            let len = chunk.min(n - start);
            views.push(FrameView {
                frame: self.clone(),
                start,
                len,
            });
            start += len;
        }
        views
    }

    /// Copy row `i`'s dimension codes into `buf` (cleared first). The
    /// gather boundary: row-shaped probes (LCA computation, rule hashing)
    /// read from here; everything else scans the columns directly.
    /// Compressed columns decode the single value in place (O(1) for
    /// packed segments).
    pub fn gather_row(&self, i: usize, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|col| col.value_at(i)));
    }
}

fn table_cards(table: &Table) -> Vec<u32> {
    table
        .cardinalities()
        .into_iter()
        .map(|c| u32::try_from(c).unwrap_or(u32::MAX))
        .collect()
}

/// Streaming constructor for compressed [`Frame`]s: buffer rows into
/// per-column pending morsels and encode each morsel as it fills, so
/// building a multi-million-row frame never materializes whole raw
/// columns. All columns flush together — the resulting frame's columns
/// share one segmentation, which is what morsel-driven scans rely on.
#[derive(Debug)]
pub struct FrameBuilder {
    /// Per-column buffer of the current (unencoded) morsel.
    pending: Vec<Vec<u32>>,
    /// Per-column encoded segments.
    segments: Vec<Vec<Segment>>,
    /// Per-column observed maximum code (the cardinality bound when no
    /// dictionary is supplied at finish).
    max_code: Vec<u32>,
    measure: Vec<f64>,
    morsel_rows: usize,
    rows: usize,
}

impl FrameBuilder {
    /// A builder for `dims` dimension columns with the default
    /// [`MORSEL_ROWS`] segment size.
    pub fn new(dims: usize) -> FrameBuilder {
        FrameBuilder::with_morsel_rows(dims, MORSEL_ROWS)
    }

    /// A builder with an explicit morsel size (tests use small morsels to
    /// exercise multi-segment frames cheaply).
    pub fn with_morsel_rows(dims: usize, morsel_rows: usize) -> FrameBuilder {
        let morsel_rows = morsel_rows.max(1);
        FrameBuilder {
            pending: (0..dims).map(|_| Vec::with_capacity(morsel_rows)).collect(),
            segments: (0..dims).map(|_| Vec::new()).collect(),
            max_code: vec![0; dims],
            measure: Vec::new(),
            morsel_rows,
            rows: 0,
        }
    }

    /// Rows pushed so far.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Append one row of dimension codes plus its measure value.
    ///
    /// # Panics
    /// Panics when `codes` does not have one code per dimension column.
    pub fn push_row(&mut self, codes: &[u32], m: f64) {
        // lint:allow(SL001) — constructor contract; a ragged row is a logic error
        assert_eq!(
            codes.len(),
            self.pending.len(),
            "one code per dimension column"
        );
        for (j, &v) in codes.iter().enumerate() {
            self.pending[j].push(v);
            if v > self.max_code[j] {
                self.max_code[j] = v;
            }
        }
        self.measure.push(m);
        self.rows += 1;
        if self.rows.is_multiple_of(self.morsel_rows) {
            self.flush();
        }
    }

    /// Encode the pending morsel of every column.
    fn flush(&mut self) {
        for (buf, segs) in self.pending.iter_mut().zip(self.segments.iter_mut()) {
            if !buf.is_empty() {
                segs.push(Segment::encode(buf));
                buf.clear();
            }
        }
    }

    /// Finish into a compressed frame, bounding each cardinality by the
    /// observed maximum code + 1 (saturating — same convention as
    /// [`Frame::from_columns`]).
    pub fn finish(mut self) -> Frame {
        let cards: Vec<u32> = self
            .max_code
            .iter()
            .map(|&m| {
                if self.rows == 0 {
                    0
                } else {
                    m.saturating_add(1)
                }
            })
            .collect();
        self.flush();
        self.into_frame(cards)
    }

    /// Finish with explicit per-dimension dictionary cardinalities.
    ///
    /// # Panics
    /// Panics on a cardinality count mismatch.
    pub fn finish_with_cards(mut self, cards: Vec<u32>) -> Frame {
        // lint:allow(SL001) — constructor contract, mirrors from_columns_with_cards
        assert!(
            cards.len() == self.pending.len(),
            "one cardinality per dimension column"
        );
        self.flush();
        self.into_frame(cards)
    }

    fn into_frame(self, cards: Vec<u32>) -> Frame {
        let cols: Vec<Column> = self
            .segments
            .into_iter()
            .map(|segs| Column::Compressed(Arc::new(CompressedCol::from_segments(segs))))
            .collect();
        Frame {
            cols: Arc::from(cols),
            measure: Arc::from(self.measure),
            rows: self.rows,
            cards: Arc::from(cards),
            fingerprint: OnceLock::new(),
        }
    }
}

/// Reusable per-column decode buffers for morsel-driven scans: one scratch
/// holds one morsel of every compressed column, reused across morsels and
/// blocks so the steady-state scan allocates nothing.
#[derive(Debug, Default)]
pub struct ColScratch {
    bufs: Vec<Vec<u32>>,
}

impl ColScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> ColScratch {
        ColScratch::default()
    }
}

/// A zero-copy range view over a [`Frame`]'s columns: the unit of
/// partitioning for columnar datasets. Cloning bumps the frame's `Arc`s.
#[derive(Debug, Clone)]
pub struct FrameView {
    frame: Frame,
    start: usize,
    len: usize,
}

impl FrameView {
    /// The underlying frame.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// First row of the range (an offset into the frame).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of rows in view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of dimension attributes.
    pub fn num_dims(&self) -> usize {
        self.frame.num_dims()
    }

    /// The in-range slice of dimension column `j` (raw columns only — see
    /// [`Frame::col`]).
    ///
    /// # Panics
    /// Panics when column `j` is compressed.
    pub fn col(&self, j: usize) -> &[u32] {
        &self.frame.col(j)[self.start..self.start + self.len]
    }

    /// The scan chunks of this view as `(local_start, len)` ranges: one
    /// whole-view morsel for raw frames (scans degenerate to the direct
    /// column borrow), the intersection with the frame's segment
    /// boundaries for compressed frames (each morsel decodes without
    /// crossing a segment). Empty views yield no morsels. Iterating
    /// morsels in order visits exactly the view's rows in ascending order
    /// — the fold order every scan preserves.
    pub fn morsel_bounds(&self) -> Vec<(usize, usize)> {
        if self.len == 0 {
            return Vec::new();
        }
        match self.frame.segment_offsets() {
            None => vec![(0, self.len)],
            Some(offsets) => {
                let (s, e) = (self.start, self.start + self.len);
                let mut out = Vec::new();
                for w in offsets.windows(2) {
                    let (a, b) = (w[0].max(s), w[1].min(e));
                    if a < b {
                        out.push((a - s, b - a));
                    }
                }
                out
            }
        }
    }

    /// Borrow every dimension column for the morsel
    /// `[local_start, local_start + n)`: raw columns as direct sub-slices
    /// of the shared buffers (zero copies), compressed columns decoded
    /// into `scratch`. Row `i` of the returned slices is view-local row
    /// `local_start + i`.
    ///
    /// # Panics
    /// Panics when the range exceeds the view.
    pub fn morsel_cols<'a>(
        &'a self,
        local_start: usize,
        n: usize,
        scratch: &'a mut ColScratch,
    ) -> Vec<&'a [u32]> {
        // lint:allow(SL001) — documented range contract, mirrors `[T]` slicing
        assert!(local_start + n <= self.len, "morsel range out of bounds");
        let d = self.num_dims();
        let global = self.start + local_start;
        if scratch.bufs.len() < d {
            scratch.bufs.resize_with(d, Vec::new);
        }
        for (j, col) in self.frame.cols.iter().enumerate() {
            if let Column::Compressed(c) = col {
                let buf = &mut scratch.bufs[j];
                buf.clear();
                c.decode_range_into(global, n, buf);
            }
        }
        let scratch = &*scratch;
        (0..d)
            .map(|j| match &self.frame.cols[j] {
                Column::Raw(a) => &a[global..global + n],
                Column::Compressed(_) => scratch.bufs[j].as_slice(),
            })
            .collect()
    }

    /// [`Self::morsel_cols`] for a subset of columns (scans that touch
    /// only a rule's constant columns decode only those). The returned
    /// slices parallel `idxs`.
    ///
    /// # Panics
    /// Panics when the range exceeds the view.
    pub fn morsel_cols_indexed<'a>(
        &'a self,
        idxs: &[usize],
        local_start: usize,
        n: usize,
        scratch: &'a mut ColScratch,
    ) -> Vec<&'a [u32]> {
        // lint:allow(SL001) — documented range contract, mirrors `[T]` slicing
        assert!(local_start + n <= self.len, "morsel range out of bounds");
        let global = self.start + local_start;
        if scratch.bufs.len() < idxs.len() {
            scratch.bufs.resize_with(idxs.len(), Vec::new);
        }
        for (k, &j) in idxs.iter().enumerate() {
            if let Column::Compressed(c) = &self.frame.cols[j] {
                let buf = &mut scratch.bufs[k];
                buf.clear();
                c.decode_range_into(global, n, buf);
            }
        }
        let scratch = &*scratch;
        idxs.iter()
            .enumerate()
            .map(|(k, &j)| match &self.frame.cols[j] {
                Column::Raw(a) => &a[global..global + n],
                Column::Compressed(_) => scratch.bufs[k].as_slice(),
            })
            .collect()
    }

    /// The in-range slice of the measure column.
    pub fn measures(&self) -> &[f64] {
        &self.frame.measure[self.start..self.start + self.len]
    }

    /// Per-dimension dictionary cardinalities of the underlying frame.
    pub fn cards(&self) -> &[u32] {
        self.frame.cards()
    }

    /// Narrow to rows `[start, start + len)` of *this* view.
    ///
    /// # Panics
    /// Panics if the range exceeds the view.
    pub fn slice(&self, start: usize, len: usize) -> FrameView {
        // lint:allow(SL001) — documented range contract, mirrors `[T]` slicing
        assert!(start + len <= self.len, "FrameView range out of bounds");
        FrameView {
            frame: self.frame.clone(),
            start: self.start + start,
            len,
        }
    }

    /// Copy local row `i`'s dimension codes into `buf` (cleared first).
    pub fn gather_row(&self, i: usize, buf: &mut Vec<u32>) {
        debug_assert!(i < self.len);
        self.frame.gather_row(self.start + i, buf);
    }

    /// Local row `i`'s dimension codes as a fresh boxed slice (sample
    /// extraction and the row-major reference path; not the hot loop).
    pub fn gather_row_boxed(&self, i: usize) -> Box<[u32]> {
        let mut buf = Vec::with_capacity(self.num_dims());
        self.gather_row(i, &mut buf);
        buf.into_boxed_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn frame_transposes_the_table() {
        let t = generators::flights();
        let f = Frame::from_table(&t);
        assert_eq!(f.num_rows(), t.num_rows());
        assert_eq!(f.num_dims(), t.num_dims());
        assert_eq!(f.measures(), t.measures());
        assert_eq!(f.fingerprint(), t.fingerprint());
        let mut buf = Vec::new();
        for (i, row) in t.rows().enumerate() {
            f.gather_row(i, &mut buf);
            assert_eq!(buf.as_slice(), row);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(f.col(j)[i], v);
            }
        }
    }

    #[test]
    fn partition_views_match_parallelize_chunking() {
        let t = generators::flights(); // 14 rows
        let f = Frame::from_table(&t);
        let views = f.partition_views(4); // ceil(14/4) = 4 → 4,4,4,2
        assert_eq!(views.len(), 4);
        let lens: Vec<usize> = views.iter().map(FrameView::len).collect();
        assert_eq!(lens, vec![4, 4, 4, 2]);
        assert_eq!(views[2].start(), 8);
        // Trailing views of an over-partitioned frame are empty.
        let many = f.partition_views(20);
        assert_eq!(many.len(), 20);
        assert_eq!(many.iter().map(FrameView::len).sum::<usize>(), 14);
        assert!(many[14].is_empty());
        // Degenerate request behaves like parallelize(.., 1).
        assert_eq!(f.partition_views(0).len(), 1);
    }

    #[test]
    fn views_and_slices_are_zero_copy_windows() {
        let t = generators::flights();
        let f = Frame::from_table(&t);
        let v = f.view().slice(3, 5);
        assert_eq!(v.len(), 5);
        assert_eq!(v.col(0), &f.col(0)[3..8]);
        assert_eq!(v.measures(), &t.measures()[3..8]);
        assert_eq!(&*v.gather_row_boxed(0), t.row(3));
        let inner = v.slice(1, 2);
        assert_eq!(inner.col(1), &f.col(1)[4..6]);
    }

    #[test]
    fn from_columns_round_trips_values() {
        let cols = vec![vec![1u32, 2, 3], vec![9, 9, 9]];
        let f = Frame::from_columns(cols.clone(), vec![0.5, 1.5, 2.5]);
        assert_eq!(f.num_dims(), 2);
        assert_eq!(f.col(0), &cols[0][..]);
        assert_eq!(f.measures(), &[0.5, 1.5, 2.5]);
        // Content-addressed: same columns, same fingerprint; any change moves it.
        let same = Frame::from_columns(cols.clone(), vec![0.5, 1.5, 2.5]);
        assert_eq!(f.fingerprint(), same.fingerprint());
        let diff = Frame::from_columns(cols, vec![0.5, 1.5, 2.0]);
        assert_ne!(f.fingerprint(), diff.fingerprint());
    }

    #[test]
    fn cards_come_from_the_dictionary_or_the_observed_codes() {
        let t = generators::flights();
        let f = Frame::from_table(&t);
        let expect: Vec<u32> = t.cardinalities().iter().map(|&c| c as u32).collect();
        assert_eq!(f.cards(), &expect[..]);
        // Column-assembled frames bound cardinality by max code + 1 …
        let g = Frame::from_columns(vec![vec![0, 4, 2], vec![1, 1, 0]], vec![1.0; 3]);
        assert_eq!(g.cards(), &[5, 2]);
        // … and a wildcard-bearing column saturates instead of wrapping.
        let w = Frame::from_columns(vec![vec![0, u32::MAX]], vec![1.0; 2]);
        assert_eq!(w.cards(), &[u32::MAX]);
        // Explicit cards survive the round trip wider than the observed codes.
        let e = Frame::from_columns_with_cards(vec![vec![0, 1]], vec![1.0; 2], vec![7]);
        assert_eq!(e.cards(), &[7]);
        assert_eq!(e.view().slice(0, 1).cards(), &[7]);
    }

    #[test]
    fn col_slice_windows_share_the_buffer() {
        let s: ColSlice<f64> = vec![0.0, 1.0, 2.0, 3.0, 4.0].into();
        assert_eq!(s.len(), 5);
        let w = s.slice(1, 3);
        assert_eq!(&*w, &[1.0, 2.0, 3.0]);
        let ww = w.slice(2, 1);
        assert_eq!(&*ww, &[3.0]);
        assert!(w.slice(0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn col_slice_range_checked() {
        let s: ColSlice<u32> = vec![1, 2, 3].into();
        let _ = s.slice(2, 2);
    }

    // --- compressed representation ---------------------------------------

    /// Build the same table raw and compressed (small morsels so even tiny
    /// tables span several segments).
    fn both_frames(rows: usize) -> (Frame, Frame) {
        let t = generators::income_like(rows, 7);
        let raw = Frame::from_table(&t);
        let mut b = FrameBuilder::with_morsel_rows(t.num_dims(), 64);
        for (i, row) in t.rows().enumerate() {
            b.push_row(row, t.measure(i));
        }
        let compressed = b.finish_with_cards(
            t.cardinalities()
                .into_iter()
                .map(|c| u32::try_from(c).unwrap_or(u32::MAX))
                .collect(),
        );
        (raw, compressed)
    }

    #[test]
    fn builder_matches_transpose_exactly() {
        let (raw, comp) = both_frames(300);
        assert!(comp.is_compressed());
        assert!(!raw.is_compressed());
        assert_eq!(comp.num_rows(), raw.num_rows());
        assert_eq!(comp.cards(), raw.cards());
        assert_eq!(comp.measures(), raw.measures());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for i in 0..raw.num_rows() {
            raw.gather_row(i, &mut a);
            comp.gather_row(i, &mut b);
            assert_eq!(a, b, "row {i}");
        }
        // The lazy fingerprint covers decoded values, so a compressed frame
        // hashes identically to a raw frame assembled from the same columns.
        let cols: Vec<Vec<u32>> = (0..raw.num_dims()).map(|j| raw.col(j).to_vec()).collect();
        let lazy_raw =
            Frame::from_columns_with_cards(cols, raw.measures().to_vec(), raw.cards().to_vec());
        assert_eq!(comp.fingerprint(), lazy_raw.fingerprint());
    }

    #[test]
    fn compressed_frames_are_smaller() {
        let (raw, comp) = both_frames(2000);
        assert!(comp.dim_bytes() < raw.dim_bytes() / 2);
        assert_eq!(raw.dim_bytes(), 2000 * raw.num_dims() * 4);
    }

    #[test]
    fn morsel_scan_visits_rows_in_order() {
        let (raw, comp) = both_frames(300);
        for parts in [1, 3, 4, 7] {
            let raw_views = raw.partition_views(parts);
            let comp_views = comp.partition_views(parts);
            for (rv, cv) in raw_views.iter().zip(&comp_views) {
                // Raw views scan as one morsel.
                if !rv.is_empty() {
                    assert_eq!(rv.morsel_bounds(), vec![(0, rv.len())]);
                }
                // Compressed morsels tile the view in order.
                let bounds = cv.morsel_bounds();
                let mut expect = 0usize;
                let mut scratch = ColScratch::new();
                for &(s, n) in &bounds {
                    assert_eq!(s, expect);
                    expect += n;
                    let cols = cv.morsel_cols(s, n, &mut scratch);
                    for (j, col) in cols.iter().enumerate() {
                        assert_eq!(*col, &rv.col(j)[s..s + n], "partition morsel col {j}");
                    }
                }
                assert_eq!(expect, cv.len());
            }
        }
    }

    #[test]
    fn indexed_morsel_cols_select_columns() {
        let (raw, comp) = both_frames(200);
        let view = comp.view().slice(33, 150);
        let rview = raw.view().slice(33, 150);
        let mut scratch = ColScratch::new();
        for &(s, n) in &view.morsel_bounds() {
            let cols = view.morsel_cols_indexed(&[2, 0], s, n, &mut scratch);
            assert_eq!(cols.len(), 2);
            assert_eq!(cols[0], &rview.col(2)[s..s + n]);
            assert_eq!(cols[1], &rview.col(0)[s..s + n]);
        }
    }

    #[test]
    fn from_table_with_honors_the_policy() {
        let t = generators::income_like(500, 11);
        let never = Frame::from_table_with(&t, Compression::Never);
        let auto = Frame::from_table_with(&t, Compression::Auto);
        let always = Frame::from_table_with(&t, Compression::Always);
        assert!(!never.is_compressed());
        // 500 × 9 × 4 B is far below the Auto threshold.
        assert!(!auto.is_compressed());
        assert!(always.is_compressed());
        assert_eq!(always.fingerprint(), t.fingerprint());
        assert_eq!(always.cards(), never.cards());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for i in 0..t.num_rows() {
            never.gather_row(i, &mut a);
            always.gather_row(i, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn compressed_column_formats_are_reported() {
        let (_, comp) = both_frames(300);
        let formats = comp.column_formats();
        assert_eq!(formats.len(), comp.num_dims());
        assert!(formats
            .iter()
            .all(|f| matches!(f, ColumnFormat::Compressed { .. })));
        // Display is compact and names the dominant format.
        let rendered: Vec<String> = formats.iter().map(ToString::to_string).collect();
        assert!(rendered.iter().all(|s| !s.is_empty()));
        assert_eq!(ColumnFormat::Raw.to_string(), "raw");
    }

    #[test]
    #[should_panic(expected = "compressed")]
    fn raw_col_accessor_rejects_compressed_columns() {
        let (_, comp) = both_frames(100);
        let _ = comp.col(0);
    }

    #[test]
    fn empty_builder_finishes_cleanly() {
        let f = FrameBuilder::new(3).finish();
        assert_eq!(f.num_rows(), 0);
        assert_eq!(f.num_dims(), 3);
        assert_eq!(f.cards(), &[0, 0, 0]);
        assert!(f.view().morsel_bounds().is_empty());
    }
}
