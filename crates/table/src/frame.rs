//! The columnar, `Arc`-shared mining frame: the one in-memory
//! representation the whole stack scans.
//!
//! A [`Table`] stores its dimension codes row-major, which is the right
//! layout for building and CSV I/O but the wrong one for the scan-dominated
//! mining workload: every greedy iteration re-aggregates all rows, and the
//! repeated-query setting means the same table is scanned across many
//! requests. A [`Frame`] transposes the table once into struct-of-arrays
//! form — one contiguous `u32` column per dimension attribute plus the
//! `f64` measure column, each behind an `Arc` — so that
//!
//! * every scan walks contiguous, type-homogeneous memory,
//! * partitions are [`FrameView`] *range views* over the shared columns
//!   (an `Arc` bump and two offsets — no per-row boxing, no copying), and
//! * concurrent jobs mining the same registered table share one set of
//!   buffers.
//!
//! The frame carries the source table's content fingerprint so downstream
//! caches stay content-addressed without re-hashing.

use crate::table::Table;
use std::sync::{Arc, OnceLock};

/// A shared, immutable slice of one column: an `Arc`'d buffer plus a range.
/// Cloning is an `Arc` bump; deref yields the in-range `&[T]`.
#[derive(Debug, Clone)]
pub struct ColSlice<T> {
    data: Arc<[T]>,
    start: usize,
    len: usize,
}

impl<T> ColSlice<T> {
    /// View an entire shared buffer.
    pub fn full(data: Arc<[T]>) -> Self {
        let len = data.len();
        ColSlice {
            data,
            start: 0,
            len,
        }
    }

    /// Narrow this slice to `[start, start + len)` of *this* slice.
    ///
    /// # Panics
    /// Panics if the range exceeds the current slice.
    pub fn slice(&self, start: usize, len: usize) -> Self {
        // lint:allow(SL001) — documented range contract, mirrors `[T]` slicing
        assert!(start + len <= self.len, "ColSlice range out of bounds");
        ColSlice {
            data: Arc::clone(&self.data),
            start: self.start + start,
            len,
        }
    }

    /// Number of elements in range.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The in-range elements.
    pub fn as_slice(&self) -> &[T] {
        &self.data[self.start..self.start + self.len]
    }
}

impl<T> std::ops::Deref for ColSlice<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> From<Vec<T>> for ColSlice<T> {
    fn from(v: Vec<T>) -> Self {
        ColSlice::full(Arc::from(v))
    }
}

/// The columnar frame: one contiguous dimension-code column per attribute
/// plus the measure column, all `Arc`-shared. Built once per table (at
/// registration / preparation time) and scanned by every request.
///
/// Cloning a `Frame` bumps `d + 1` `Arc`s; no data moves.
#[derive(Debug, Clone)]
pub struct Frame {
    cols: Arc<[Arc<[u32]>]>,
    measure: Arc<[f64]>,
    rows: usize,
    /// Per-dimension dictionary cardinalities `|dom(Aⱼ)|` — the bit-width
    /// metadata packed rule codes are derived from. Stamped from the source
    /// table's dictionaries by [`Frame::from_table`]; carried through spill
    /// round-trips by [`Frame::from_columns_with_cards`] so a decoded block
    /// reproduces the exact packed layout of the frame it was encoded from.
    cards: Arc<[u32]>,
    /// Content fingerprint: stamped from the source table by
    /// [`Frame::from_table`]; computed lazily (first [`Self::fingerprint`]
    /// call) for frames assembled from raw columns, so the spill-decode
    /// path never pays a hash pass nobody reads.
    fingerprint: OnceLock<u64>,
}

impl Frame {
    /// Transpose `table` into columnar form (one pass per column) and stamp
    /// it with the table's content fingerprint.
    pub fn from_table(table: &Table) -> Frame {
        let d = table.num_dims();
        let n = table.num_rows();
        let cols: Vec<Arc<[u32]>> = (0..d)
            .map(|j| {
                let mut col = Vec::with_capacity(n);
                col.extend(table.rows().map(|row| row[j]));
                Arc::from(col)
            })
            .collect();
        let fingerprint = OnceLock::new();
        let _ = fingerprint.set(table.fingerprint());
        let cards: Vec<u32> = table
            .cardinalities()
            .into_iter()
            .map(|c| u32::try_from(c).unwrap_or(u32::MAX))
            .collect();
        Frame {
            cols: Arc::from(cols),
            measure: Arc::from(table.measures().to_vec()),
            rows: n,
            cards: Arc::from(cards),
            fingerprint,
        }
    }

    /// Assemble a frame from raw columns (the spill-decode path). Every
    /// dimension column must have one entry per measure value. The
    /// fingerprint — computed only if someone asks for it — covers the raw
    /// codes and measure bits: it identifies the *data*, not any schema or
    /// dictionary.
    ///
    /// # Panics
    /// Panics on ragged columns.
    pub fn from_columns(cols: Vec<Vec<u32>>, measure: Vec<f64>) -> Frame {
        // Without dictionary metadata the best cardinality bound is the
        // observed maximum code + 1 per column (saturating: a column that
        // contains the wildcard sentinel u32::MAX simply gets a cardinality
        // too wide to pack, which disables packing rather than corrupting it).
        let cards: Vec<u32> = cols
            .iter()
            .map(|c| c.iter().copied().max().map_or(0, |m| m.saturating_add(1)))
            .collect();
        Frame::from_columns_with_cards(cols, measure, cards)
    }

    /// [`Frame::from_columns`], but with explicit per-dimension
    /// cardinalities — the spill-decode path uses this to reproduce the
    /// packed-code layout of the frame the block was encoded from, which can
    /// be wider than the codes a single partition happens to contain.
    ///
    /// # Panics
    /// Panics on ragged columns or a cardinality count mismatch.
    pub fn from_columns_with_cards(
        cols: Vec<Vec<u32>>,
        measure: Vec<f64>,
        cards: Vec<u32>,
    ) -> Frame {
        let n = measure.len();
        // lint:allow(SL001) — constructor contract; ragged columns are a logic error
        assert!(
            cols.iter().all(|c| c.len() == n),
            "every dimension column must have one code per row"
        );
        // lint:allow(SL001) — constructor contract, same class as the ragged check
        assert!(
            cards.len() == cols.len(),
            "one cardinality per dimension column"
        );
        Frame {
            cols: Arc::from(cols.into_iter().map(Arc::from).collect::<Vec<_>>()),
            measure: Arc::from(measure),
            rows: n,
            cards: Arc::from(cards),
            fingerprint: OnceLock::new(),
        }
    }

    /// Number of rows `n`.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of dimension attributes `d`.
    pub fn num_dims(&self) -> usize {
        self.cols.len()
    }

    /// The full column of dimension attribute `j`.
    pub fn col(&self, j: usize) -> &[u32] {
        &self.cols[j]
    }

    /// The full measure column.
    pub fn measures(&self) -> &[f64] {
        &self.measure
    }

    /// Per-dimension dictionary cardinalities (bit-width metadata for the
    /// packed rule-code layout).
    pub fn cards(&self) -> &[u32] {
        &self.cards
    }

    /// The cardinalities as a shared buffer (an `Arc` bump).
    pub fn cards_arc(&self) -> Arc<[u32]> {
        Arc::clone(&self.cards)
    }

    /// The measure column as a shared slice (an `Arc` bump).
    pub fn measure_slice(&self) -> ColSlice<f64> {
        ColSlice::full(Arc::clone(&self.measure))
    }

    /// Content fingerprint: carried from the source table, or computed on
    /// first call (and cached) for column-assembled frames.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h = crate::fingerprint::Fnv64::new();
            h.write_u64(self.cols.len() as u64);
            h.write_u64(self.rows as u64);
            for col in self.cols.iter() {
                for &code in col.iter() {
                    h.write_u32(code);
                }
            }
            for &m in self.measure.iter() {
                h.write_f64(m);
            }
            h.finish()
        })
    }

    /// A view over the whole frame.
    pub fn view(&self) -> FrameView {
        FrameView {
            frame: self.clone(),
            start: 0,
            len: self.rows,
        }
    }

    /// Split the frame into exactly `partitions` contiguous range views
    /// using the same chunking as the dataflow engine's `parallelize`
    /// (`⌈n / partitions⌉` rows per chunk, trailing views possibly empty) —
    /// so a columnar dataset built from these views places every row in the
    /// same partition, at the same offset, as the row-major path it
    /// replaces. This is what keeps the two representations bit-identical.
    pub fn partition_views(&self, partitions: usize) -> Vec<FrameView> {
        let partitions = partitions.max(1);
        let n = self.rows;
        let chunk = n.div_ceil(partitions).max(1);
        let mut views = Vec::with_capacity(partitions);
        let mut start = 0usize;
        for _ in 0..partitions {
            let len = chunk.min(n - start);
            views.push(FrameView {
                frame: self.clone(),
                start,
                len,
            });
            start += len;
        }
        views
    }

    /// Copy row `i`'s dimension codes into `buf` (cleared first). The
    /// gather boundary: row-shaped probes (LCA computation, rule hashing)
    /// read from here; everything else scans the columns directly.
    pub fn gather_row(&self, i: usize, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|col| col[i]));
    }
}

/// A zero-copy range view over a [`Frame`]'s columns: the unit of
/// partitioning for columnar datasets. Cloning bumps the frame's `Arc`s.
#[derive(Debug, Clone)]
pub struct FrameView {
    frame: Frame,
    start: usize,
    len: usize,
}

impl FrameView {
    /// The underlying frame.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// First row of the range (an offset into the frame).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of rows in view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of dimension attributes.
    pub fn num_dims(&self) -> usize {
        self.frame.num_dims()
    }

    /// The in-range slice of dimension column `j`.
    pub fn col(&self, j: usize) -> &[u32] {
        &self.frame.cols[j][self.start..self.start + self.len]
    }

    /// The in-range slice of the measure column.
    pub fn measures(&self) -> &[f64] {
        &self.frame.measure[self.start..self.start + self.len]
    }

    /// Per-dimension dictionary cardinalities of the underlying frame.
    pub fn cards(&self) -> &[u32] {
        self.frame.cards()
    }

    /// Narrow to rows `[start, start + len)` of *this* view.
    ///
    /// # Panics
    /// Panics if the range exceeds the view.
    pub fn slice(&self, start: usize, len: usize) -> FrameView {
        // lint:allow(SL001) — documented range contract, mirrors `[T]` slicing
        assert!(start + len <= self.len, "FrameView range out of bounds");
        FrameView {
            frame: self.frame.clone(),
            start: self.start + start,
            len,
        }
    }

    /// Copy local row `i`'s dimension codes into `buf` (cleared first).
    pub fn gather_row(&self, i: usize, buf: &mut Vec<u32>) {
        debug_assert!(i < self.len);
        self.frame.gather_row(self.start + i, buf);
    }

    /// Local row `i`'s dimension codes as a fresh boxed slice (sample
    /// extraction and the row-major reference path; not the hot loop).
    pub fn gather_row_boxed(&self, i: usize) -> Box<[u32]> {
        let mut buf = Vec::with_capacity(self.num_dims());
        self.gather_row(i, &mut buf);
        buf.into_boxed_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn frame_transposes_the_table() {
        let t = generators::flights();
        let f = Frame::from_table(&t);
        assert_eq!(f.num_rows(), t.num_rows());
        assert_eq!(f.num_dims(), t.num_dims());
        assert_eq!(f.measures(), t.measures());
        assert_eq!(f.fingerprint(), t.fingerprint());
        let mut buf = Vec::new();
        for (i, row) in t.rows().enumerate() {
            f.gather_row(i, &mut buf);
            assert_eq!(buf.as_slice(), row);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(f.col(j)[i], v);
            }
        }
    }

    #[test]
    fn partition_views_match_parallelize_chunking() {
        let t = generators::flights(); // 14 rows
        let f = Frame::from_table(&t);
        let views = f.partition_views(4); // ceil(14/4) = 4 → 4,4,4,2
        assert_eq!(views.len(), 4);
        let lens: Vec<usize> = views.iter().map(FrameView::len).collect();
        assert_eq!(lens, vec![4, 4, 4, 2]);
        assert_eq!(views[2].start(), 8);
        // Trailing views of an over-partitioned frame are empty.
        let many = f.partition_views(20);
        assert_eq!(many.len(), 20);
        assert_eq!(many.iter().map(FrameView::len).sum::<usize>(), 14);
        assert!(many[14].is_empty());
        // Degenerate request behaves like parallelize(.., 1).
        assert_eq!(f.partition_views(0).len(), 1);
    }

    #[test]
    fn views_and_slices_are_zero_copy_windows() {
        let t = generators::flights();
        let f = Frame::from_table(&t);
        let v = f.view().slice(3, 5);
        assert_eq!(v.len(), 5);
        assert_eq!(v.col(0), &f.col(0)[3..8]);
        assert_eq!(v.measures(), &t.measures()[3..8]);
        assert_eq!(&*v.gather_row_boxed(0), t.row(3));
        let inner = v.slice(1, 2);
        assert_eq!(inner.col(1), &f.col(1)[4..6]);
    }

    #[test]
    fn from_columns_round_trips_values() {
        let cols = vec![vec![1u32, 2, 3], vec![9, 9, 9]];
        let f = Frame::from_columns(cols.clone(), vec![0.5, 1.5, 2.5]);
        assert_eq!(f.num_dims(), 2);
        assert_eq!(f.col(0), &cols[0][..]);
        assert_eq!(f.measures(), &[0.5, 1.5, 2.5]);
        // Content-addressed: same columns, same fingerprint; any change moves it.
        let same = Frame::from_columns(cols.clone(), vec![0.5, 1.5, 2.5]);
        assert_eq!(f.fingerprint(), same.fingerprint());
        let diff = Frame::from_columns(cols, vec![0.5, 1.5, 2.0]);
        assert_ne!(f.fingerprint(), diff.fingerprint());
    }

    #[test]
    fn cards_come_from_the_dictionary_or_the_observed_codes() {
        let t = generators::flights();
        let f = Frame::from_table(&t);
        let expect: Vec<u32> = t.cardinalities().iter().map(|&c| c as u32).collect();
        assert_eq!(f.cards(), &expect[..]);
        // Column-assembled frames bound cardinality by max code + 1 …
        let g = Frame::from_columns(vec![vec![0, 4, 2], vec![1, 1, 0]], vec![1.0; 3]);
        assert_eq!(g.cards(), &[5, 2]);
        // … and a wildcard-bearing column saturates instead of wrapping.
        let w = Frame::from_columns(vec![vec![0, u32::MAX]], vec![1.0; 2]);
        assert_eq!(w.cards(), &[u32::MAX]);
        // Explicit cards survive the round trip wider than the observed codes.
        let e = Frame::from_columns_with_cards(vec![vec![0, 1]], vec![1.0; 2], vec![7]);
        assert_eq!(e.cards(), &[7]);
        assert_eq!(e.view().slice(0, 1).cards(), &[7]);
    }

    #[test]
    fn col_slice_windows_share_the_buffer() {
        let s: ColSlice<f64> = vec![0.0, 1.0, 2.0, 3.0, 4.0].into();
        assert_eq!(s.len(), 5);
        let w = s.slice(1, 3);
        assert_eq!(&*w, &[1.0, 2.0, 3.0]);
        let ww = w.slice(2, 1);
        assert_eq!(&*ww, &[3.0]);
        assert!(w.slice(0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn col_slice_range_checked() {
        let s: ColSlice<u32> = vec![1, 2, 3].into();
        let _ = s.slice(2, 2);
    }
}
