//! Property-based tests for the table substrate: dictionary encode/decode
//! round-trips and CSV write→read identity.

use proptest::prelude::*;
use sirum_table::csv::{read_csv, write_csv};
use sirum_table::{Dictionary, Schema, Table};

/// A pool of categorical values of mixed scripts and lengths, including
/// the empty string and every shape RFC-4180 quoting must escort through
/// a round trip: embedded commas, double quotes (lone, doubled, leading,
/// trailing) and line breaks.
const VALUE_POOL: &[&str] = &[
    "",
    "a",
    "b",
    "ab",
    "SF",
    "London",
    "東京",
    "Zürich",
    "v 0",
    "v-1",
    "x_y",
    "0",
    "-1",
    "3.5",
    "NaN",
    "*",
    "c0:v1",
    "long value with spaces",
    "ümlaut",
    "ØΔπ",
    "London, UK",
    "a,b,c",
    ",leading and trailing,",
    "he said \"hi\"",
    "\"quoted\"",
    "double\"\"doubled",
    "multi\nline",
    "crlf\r\ninside",
    "comma, \"quote\" and\nnewline",
];

fn value() -> impl Strategy<Value = &'static str> {
    (0..VALUE_POOL.len()).prop_map(|i| VALUE_POOL[i])
}

/// A finite measure whose `Display` text parses back to the same bits
/// (Rust's shortest-round-trip float formatting guarantees this).
fn measure() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e6f64..1.0e6,
        (-50.0f64..50.0).prop_map(f64::trunc),
        Just(0.0),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dictionary_round_trips(values in prop::collection::vec(value(), 0..60)) {
        let mut dict = Dictionary::new();
        let codes: Vec<u32> = values.iter().map(|v| dict.intern(v)).collect();
        // Every code decodes back to the value that produced it.
        for (v, &c) in values.iter().zip(&codes) {
            prop_assert_eq!(dict.value(c), *v);
            prop_assert_eq!(dict.code(v), Some(c));
        }
        // Codes are dense: 0..cardinality, first occurrence order.
        let mut seen = std::collections::HashSet::new();
        let distinct: Vec<&str> = values
            .iter()
            .copied()
            .filter(|v| seen.insert(*v))
            .collect();
        prop_assert_eq!(dict.cardinality(), distinct.len());
        for (expect_code, v) in distinct.iter().enumerate() {
            prop_assert_eq!(dict.code(v), Some(expect_code as u32));
        }
        // Re-interning changes nothing.
        for v in &values {
            prop_assert_eq!(dict.intern(v), dict.code(v).unwrap());
        }
    }

    #[test]
    fn dictionary_iter_matches_value(values in prop::collection::vec(value(), 0..40)) {
        let mut dict = Dictionary::new();
        for v in &values {
            dict.intern(v);
        }
        let pairs: Vec<(u32, &str)> = dict.iter().collect();
        prop_assert_eq!(pairs.len(), dict.cardinality());
        for (code, v) in pairs {
            prop_assert_eq!(dict.value(code), v);
            prop_assert_eq!(dict.code(v), Some(code));
        }
    }

    #[test]
    fn csv_write_read_is_identity(
        (d, rows) in (1usize..5).prop_flat_map(|d| {
            (
                Just(d),
                prop::collection::vec(
                    (prop::collection::vec(0..VALUE_POOL.len(), d), measure()),
                    0..30,
                ),
            )
        })
    ) {
        // Column names exercise quoting too (a comma in the header).
        let names: Vec<String> = (0..d)
            .map(|i| {
                if i == 0 {
                    "dim, zero".to_string()
                } else {
                    format!("dim{i}")
                }
            })
            .collect();
        let mut builder = Table::builder(Schema::new(names, "measure"));
        for (value_ids, m) in &rows {
            let values: Vec<&str> = value_ids.iter().map(|&i| VALUE_POOL[i]).collect();
            builder.push_row(&values, *m);
        }
        let table = builder.build();

        let mut buf = Vec::new();
        write_csv(&table, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();

        prop_assert_eq!(back.schema(), table.schema());
        prop_assert_eq!(back.num_rows(), table.num_rows());
        for i in 0..table.num_rows() {
            let orig: Vec<&str> = table
                .row(i)
                .iter()
                .enumerate()
                .map(|(c, &code)| table.decode(c, code))
                .collect();
            let reread: Vec<&str> = back
                .row(i)
                .iter()
                .enumerate()
                .map(|(c, &code)| back.decode(c, code))
                .collect();
            prop_assert_eq!(orig, reread, "row {}", i);
            // Shortest-round-trip float formatting makes this exact.
            prop_assert_eq!(table.measure(i), back.measure(i), "measure {}", i);
        }
        // A second round trip is byte-identical (fixpoint).
        let mut buf2 = Vec::new();
        write_csv(&back, &mut buf2).unwrap();
        prop_assert_eq!(buf, buf2);
    }
}
