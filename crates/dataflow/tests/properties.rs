//! Property-based tests for the dataflow engine: encoding round-trips and
//! operator equivalence with sequential reference computations.

use proptest::prelude::*;
use sirum_dataflow::hash::FxHashMap;
use sirum_dataflow::{decode_records, encode_records, Encode, Engine, EngineConfig};

fn engine(workers: usize, partitions: usize) -> Engine {
    Engine::new(
        EngineConfig::in_memory()
            .with_workers(workers)
            .with_partitions(partitions),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_round_trips_nested(
        records in prop::collection::vec(
            (prop::collection::vec(any::<u32>(), 0..8), any::<f64>(), any::<u64>()),
            0..50,
        )
    ) {
        let boxed: Vec<(Box<[u32]>, f64, u64)> = records
            .into_iter()
            .map(|(v, f, u)| (v.into_boxed_slice(), f, u))
            .collect();
        let buf = encode_records(&boxed);
        let back: Vec<(Box<[u32]>, f64, u64)> = decode_records(&buf);
        // NaN-safe comparison via re-encoding.
        prop_assert_eq!(encode_records(&back), buf);
    }

    #[test]
    fn encode_values_stream_back_to_back(
        values in prop::collection::vec(any::<(u32, bool, i64)>(), 0..30)
    ) {
        let mut buf = Vec::new();
        for v in &values {
            v.encode(&mut buf);
        }
        let mut slice = buf.as_slice();
        for v in &values {
            let back = <(u32, bool, i64)>::decode(&mut slice);
            prop_assert_eq!(&back, v);
        }
        prop_assert!(slice.is_empty());
    }

    #[test]
    fn map_filter_equal_sequential(
        data in prop::collection::vec(any::<u32>(), 0..200),
        partitions in 1usize..8,
        workers in 1usize..4,
    ) {
        let e = engine(workers, partitions);
        let ds = e.parallelize(data.clone(), partitions);
        let out = ds
            .map("m", |&x| x.wrapping_mul(3))
            .filter("f", |&x| x % 2 == 0)
            .collect();
        let expect: Vec<u32> = data
            .iter()
            .map(|&x| x.wrapping_mul(3))
            .filter(|&x| x % 2 == 0)
            .collect();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn reduce_by_key_equals_hashmap(
        pairs in prop::collection::vec((0u32..20, 1u64..100), 0..300),
        partitions in 1usize..6,
    ) {
        let e = engine(2, partitions);
        let ds = e.parallelize(pairs.clone(), partitions);
        let mut out = ds.reduce_by_key("sum", partitions, |a, b| *a += b).collect();
        out.sort_unstable();
        let mut expect_map: FxHashMap<u32, u64> = FxHashMap::default();
        for (k, v) in pairs {
            *expect_map.entry(k).or_insert(0) += v;
        }
        let mut expect: Vec<(u32, u64)> = expect_map.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn repartition_preserves_multiset(
        data in prop::collection::vec(any::<u64>(), 0..200),
        from in 1usize..6,
        to in 1usize..6,
    ) {
        let e = engine(2, from);
        let mut out = e.parallelize(data.clone(), from).repartition(to).collect();
        let mut expect = data;
        out.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn aggregate_equals_fold(
        data in prop::collection::vec(-1000i64..1000, 0..300),
        partitions in 1usize..8,
    ) {
        let e = engine(3, partitions);
        let ds = e.parallelize(data.clone(), partitions);
        let sum = ds.aggregate("sum", || 0i64, |a, &x| *a += x, |a, b| *a += b);
        prop_assert_eq!(sum, data.iter().sum::<i64>());
    }

    #[test]
    fn cache_is_transparent(
        data in prop::collection::vec(any::<u32>(), 1..200),
        budget in 64usize..4096,
    ) {
        let e = Engine::new(
            EngineConfig::in_memory()
                .with_workers(2)
                .with_partitions(4)
                .with_memory_budget(budget),
        );
        let cached = e.parallelize(data.clone(), 4).cache();
        prop_assert_eq!(cached.collect(), data.clone());
        // Second read (possibly from spill) still matches.
        prop_assert_eq!(cached.collect(), data);
        e.store().cleanup();
    }

    #[test]
    fn take_sample_is_uniformly_without_replacement(
        n in 1usize..300,
        k in 0usize..50,
        seed in any::<u64>(),
    ) {
        let e = engine(1, 5);
        let ds = e.parallelize((0..n as u32).collect(), 5);
        let sample = ds.take_sample(k, seed);
        prop_assert_eq!(sample.len(), k.min(n));
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), sample.len());
        prop_assert!(sample.iter().all(|&x| (x as usize) < n));
    }
}
