//! Engine configuration: execution mode, parallelism, memory budget.

use crate::error::DataflowError;
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;
use std::time::Duration;

/// Which of the paper's three data processing platforms the engine emulates
/// (§2.6 / §5.2 of the thesis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Spark-like: partitions processed in parallel, intermediate results kept
    /// in memory (subject to the block-store budget).
    InMemory,
    /// Hive-on-MapReduce-like: every stage writes its output partitions to
    /// disk and reads them back, and each stage pays a job-startup latency.
    /// This reproduces the disk/startup bottleneck Figure 5.2 measures.
    DiskMr,
    /// PostgreSQL-like: a single worker executes every task sequentially
    /// (PostgreSQL 9.4 had no intra-query parallelism, §2.6.1). Data stays
    /// in memory, isolating the parallelism effect Figure 5.1 measures.
    SingleThread,
}

impl EngineMode {
    /// Canonical CLI spelling of the mode (`in-memory`, `disk-mr`,
    /// `single-thread`); round-trips through [`EngineMode::from_str`].
    pub fn name(&self) -> &'static str {
        match self {
            EngineMode::InMemory => "in-memory",
            EngineMode::DiskMr => "disk-mr",
            EngineMode::SingleThread => "single-thread",
        }
    }
}

impl fmt::Display for EngineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineMode {
    type Err = DataflowError;

    /// Parse the CLI spelling of a mode. Unknown spellings map to
    /// [`DataflowError::UnknownMode`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "in-memory" | "spark" => Ok(EngineMode::InMemory),
            "disk-mr" | "hive" => Ok(EngineMode::DiskMr),
            "single-thread" | "postgres" => Ok(EngineMode::SingleThread),
            other => Err(DataflowError::UnknownMode {
                name: other.to_string(),
            }),
        }
    }
}

/// Tuning knobs for the [`crate::Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Platform emulation mode.
    pub mode: EngineMode,
    /// Number of OS worker threads used to execute tasks. Forced to 1 in
    /// [`EngineMode::SingleThread`].
    pub workers: usize,
    /// Default number of partitions for new datasets (the paper uses 384
    /// Spark tasks; scale to taste).
    pub partitions: usize,
    /// Memory budget in bytes for cached blocks. `None` = unbounded.
    /// Mirrors Spark's executor storage memory (Figs 4.3/4.4).
    pub memory_budget: Option<usize>,
    /// Latency charged (slept) at the start of every stage. Zero for Spark
    /// mode; tens of milliseconds for Hive mode to emulate MapReduce job
    /// startup and cleanup, which §5.2 identifies as a Hive bottleneck.
    pub stage_startup: Duration,
    /// Directory for spill files and DiskMr intermediate results.
    pub spill_dir: PathBuf,
}

impl EngineConfig {
    /// Spark-like defaults: parallel, in-memory, unbounded budget.
    pub fn in_memory() -> Self {
        EngineConfig {
            mode: EngineMode::InMemory,
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            partitions: 16,
            memory_budget: None,
            stage_startup: Duration::ZERO,
            spill_dir: std::env::temp_dir().join("sirum-dataflow"),
        }
    }

    /// Hive-like: disk-materialized stages with job-startup latency.
    pub fn disk_mr() -> Self {
        EngineConfig {
            mode: EngineMode::DiskMr,
            stage_startup: Duration::from_millis(25),
            ..Self::in_memory()
        }
    }

    /// PostgreSQL-like: one worker, no intra-query parallelism.
    pub fn single_thread() -> Self {
        EngineConfig {
            mode: EngineMode::SingleThread,
            workers: 1,
            ..Self::in_memory()
        }
    }

    /// Builder-style override of the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style override of the default partition count.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions.max(1);
        self
    }

    /// Builder-style override of the cache memory budget.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Builder-style override of the per-stage startup latency.
    pub fn with_stage_startup(mut self, latency: Duration) -> Self {
        self.stage_startup = latency;
        self
    }

    /// Builder-style override of the spill directory.
    pub fn with_spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = dir;
        self
    }

    /// Effective worker count after applying mode and hardware
    /// constraints: `SingleThread` always runs one worker, and other modes
    /// cap the requested count at the machine's available parallelism —
    /// stage tasks are CPU-bound, so threads beyond the core count only
    /// thrash caches (measured ~10% on the gain-sweep workload). The cap
    /// keeps a floor of 2 so the multi-worker execution path stays
    /// exercised even on single-core CI runners; results are unaffected
    /// either way, since every stage's reduction is partition-ordered.
    pub fn effective_workers(&self) -> usize {
        match self.mode {
            EngineMode::SingleThread => 1,
            _ => {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                self.workers.clamp(1, cores.max(2))
            }
        }
    }

    /// Validate the configuration, naming the offending field. Called by
    /// [`crate::Engine::try_new`] so invalid combinations are rejected at
    /// construction time rather than mid-job.
    pub fn validate(&self) -> Result<(), DataflowError> {
        let invalid = |field: &'static str, reason: String| {
            Err(DataflowError::InvalidConfig { field, reason })
        };
        if self.workers == 0 {
            return invalid("workers", "must be ≥ 1".into());
        }
        if self.partitions == 0 {
            return invalid("partitions", "must be ≥ 1".into());
        }
        if self.memory_budget == Some(0) {
            return invalid(
                "memory_budget",
                "must be > 0 bytes (use None for unbounded)".into(),
            );
        }
        if self.spill_dir.as_os_str().is_empty() {
            return invalid("spill_dir", "must not be empty".into());
        }
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::in_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_forces_one_worker() {
        let cfg = EngineConfig::single_thread().with_workers(8);
        // with_workers sets the field, but the mode clamps the effective count.
        assert_eq!(cfg.effective_workers(), 1);
    }

    #[test]
    fn builders_compose() {
        let cfg = EngineConfig::in_memory()
            .with_workers(3)
            .with_partitions(7)
            .with_memory_budget(1 << 20);
        assert_eq!(cfg.workers, 3);
        // The effective count is hardware-capped (floor 2, ceiling the
        // requested 3), so it depends on the machine running the tests.
        assert!((2..=3).contains(&cfg.effective_workers()));
        assert_eq!(cfg.partitions, 7);
        assert_eq!(cfg.memory_budget, Some(1 << 20));
    }

    #[test]
    fn effective_workers_cap_keeps_the_parallel_path_alive() {
        // Oversubscribing far beyond any machine's cores is clamped, but
        // never below 2 (outside SingleThread): the multi-worker execution
        // path must stay exercised even on a single-core runner.
        let cfg = EngineConfig::in_memory().with_workers(10_000);
        let eff = cfg.effective_workers();
        assert!(eff >= 2);
        assert!(eff <= 10_000);
        assert_eq!(
            EngineConfig::in_memory()
                .with_workers(1)
                .effective_workers(),
            1
        );
    }

    #[test]
    fn disk_mr_has_startup_latency() {
        assert!(EngineConfig::disk_mr().stage_startup > Duration::ZERO);
        assert_eq!(EngineConfig::in_memory().stage_startup, Duration::ZERO);
    }

    #[test]
    fn mode_parse_round_trips() {
        for mode in [
            EngineMode::InMemory,
            EngineMode::DiskMr,
            EngineMode::SingleThread,
        ] {
            assert_eq!(mode.name().parse::<EngineMode>().unwrap(), mode);
        }
        assert!(matches!(
            "bogus".parse::<EngineMode>(),
            Err(DataflowError::UnknownMode { name }) if name == "bogus"
        ));
    }

    #[test]
    fn validate_names_the_offending_field() {
        assert!(EngineConfig::in_memory().validate().is_ok());
        let field = |cfg: EngineConfig| match cfg.validate() {
            Err(DataflowError::InvalidConfig { field, .. }) => field,
            other => panic!("expected InvalidConfig, got {other:?}"),
        };
        let mut cfg = EngineConfig::in_memory();
        cfg.workers = 0;
        assert_eq!(field(cfg), "workers");
        let mut cfg = EngineConfig::in_memory();
        cfg.partitions = 0;
        assert_eq!(field(cfg), "partitions");
        let mut cfg = EngineConfig::in_memory();
        cfg.memory_budget = Some(0);
        assert_eq!(field(cfg), "memory_budget");
        let mut cfg = EngineConfig::in_memory();
        cfg.spill_dir = PathBuf::new();
        assert_eq!(field(cfg), "spill_dir");
    }
}
