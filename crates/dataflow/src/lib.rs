//! # sirum-dataflow
//!
//! A miniature partitioned dataflow engine — the execution substrate for the
//! SIRUM reproduction. It stands in for the platforms the thesis evaluates:
//!
//! * **Spark** ([`EngineMode::InMemory`]): parallel tasks over partitions,
//!   map-side-combine shuffles, broadcast variables, budgeted block cache
//!   with LRU spill.
//! * **Hive on MapReduce** ([`EngineMode::DiskMr`]): identical operators, but
//!   every stage's output (and every shuffle) round-trips through disk and
//!   each stage pays a job-startup latency.
//! * **PostgreSQL** ([`EngineMode::SingleThread`]): one worker, no
//!   intra-query parallelism.
//!
//! The engine records per-task timings, shuffle volumes and disk I/O; the
//! [`cost`] module replays them through a deterministic model of an
//! `E × C`-slot cluster to reproduce the paper's scalability figures on a
//! single machine.
//!
//! ## Example
//!
//! ```
//! use sirum_dataflow::Engine;
//!
//! let engine = Engine::in_memory();
//! let data = engine.parallelize((0..1000u32).collect(), 8);
//! let pairs = data.map("key-by-mod", |&x| (x % 10, 1u64));
//! let counts = pairs.reduce_by_key("count", 4, |a, b| *a += b);
//! let mut result = counts.collect();
//! result.sort_unstable();
//! assert_eq!(result.len(), 10);
//! assert!(result.iter().all(|&(_, c)| c == 100));
//! ```

#![warn(missing_docs)]
#![allow(clippy::must_use_candidate)]

mod config;
pub mod cost;
mod dataset;
mod encode;
mod engine;
mod error;
pub mod hash;
mod memory;
mod metrics;

pub use config::{EngineConfig, EngineMode};
pub use dataset::{sample_row_indices, Dataset, Record};
pub use encode::{decode_records, decode_segment, encode_records, encode_segment, Encode};
pub use engine::{Broadcast, Engine, TaskOutput};
pub use error::DataflowError;
pub use memory::{BlockId, BlockStore, MemSample, MemoryStats};
pub use metrics::{CounterSnapshot, MetricsRegistry, StageRecord, TaskRecord};
