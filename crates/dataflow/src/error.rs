//! Typed errors for the dataflow engine: configuration validation and
//! spill-I/O failures surface as [`DataflowError`] values instead of
//! aborting the process.
//!
//! Hand-rolled in the `thiserror` style (the build is offline). The type is
//! `Clone` so the block store can retain a *poison* copy of the first I/O
//! failure while degrading gracefully, and hand the error to the driver at
//! the next health check — I/O error details are therefore carried as
//! strings rather than live [`std::io::Error`] values.

use std::fmt;

/// An error raised by the dataflow layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// An [`crate::EngineConfig`] field holds an unusable value.
    InvalidConfig {
        /// The offending configuration field.
        field: &'static str,
        /// Why the value is rejected.
        reason: String,
    },
    /// A spill-directory I/O operation failed (disk full, permissions, a
    /// vanished temp dir, …).
    Spill {
        /// The operation that failed (`"create spill directory"`,
        /// `"write spill file"`, `"read spill file"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: String,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// A string did not name a known [`crate::EngineMode`].
    UnknownMode {
        /// The unrecognized input.
        name: String,
    },
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::InvalidConfig { field, reason } => {
                write!(f, "invalid engine config: {field}: {reason}")
            }
            DataflowError::Spill { op, path, detail } => {
                write!(f, "spill I/O failure: cannot {op} {path:?}: {detail}")
            }
            DataflowError::UnknownMode { name } => write!(
                f,
                "unknown engine mode {name:?} (expected in-memory, disk-mr or single-thread)"
            ),
        }
    }
}

impl std::error::Error for DataflowError {}

impl DataflowError {
    /// Build a [`DataflowError::Spill`] from a live I/O error.
    pub(crate) fn spill(op: &'static str, path: &std::path::Path, err: &std::io::Error) -> Self {
        DataflowError::Spill {
            op,
            path: path.display().to_string(),
            detail: err.to_string(),
        }
    }
}

/// Abort with `err` rendered through its `Display` form — the single panic
/// bridge backing the crate's infallible convenience constructors
/// (e.g. [`crate::Engine::new`] for trusted, default configurations).
#[track_caller]
pub(crate) fn fail(err: DataflowError) -> ! {
    panic!("{err}") // lint:allow(SL001) — sole bridge for infallible wrappers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_field_operation_and_mode() {
        let e = DataflowError::InvalidConfig {
            field: "partitions",
            reason: "must be ≥ 1".into(),
        };
        assert!(e.to_string().contains("partitions"));
        let io = std::io::Error::other("disk full");
        let e = DataflowError::spill("write spill file", std::path::Path::new("/tmp/x"), &io);
        assert!(e.to_string().contains("disk full") && e.to_string().contains("/tmp/x"));
        let e = DataflowError::UnknownMode {
            name: "spark".into(),
        };
        assert!(e.to_string().contains("spark"));
    }
}
