//! Execution metrics: per-stage task records, shuffle volumes, disk I/O.
//!
//! These are the raw inputs to the cluster cost model (`crate::cost`) and to
//! the profiling figures (Figs 3.1, 3.2, 4.3, 4.4).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Measurement of a single task (one partition of one stage).
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// Index of the partition this task processed.
    pub partition: usize,
    /// Records consumed by the task.
    pub records_in: u64,
    /// Records produced by the task.
    pub records_out: u64,
    /// Wall-clock nanoseconds spent inside the task body.
    pub nanos: u64,
}

/// Measurement of one stage (one parallel operator execution).
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Human-readable operator label, e.g. `"lca-join"`.
    pub label: String,
    /// Per-task measurements.
    pub tasks: Vec<TaskRecord>,
    /// Records that crossed a shuffle boundary in this stage.
    pub shuffled_records: u64,
    /// Bytes that crossed a shuffle boundary in this stage.
    pub shuffled_bytes: u64,
}

impl StageRecord {
    /// Total task time in seconds (sum over tasks — i.e. sequential work).
    pub fn total_task_secs(&self) -> f64 {
        self.tasks.iter().map(|t| t.nanos as f64).sum::<f64>() / 1e9
    }

    /// Total records produced by the stage.
    pub fn records_out(&self) -> u64 {
        self.tasks.iter().map(|t| t.records_out).sum()
    }
}

#[derive(Default)]
struct Counters {
    disk_bytes_written: AtomicU64,
    disk_bytes_read: AtomicU64,
    disk_writes: AtomicU64,
    disk_reads: AtomicU64,
    broadcast_bytes: AtomicU64,
}

/// Snapshot of the global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Bytes written to spill / intermediate files.
    pub disk_bytes_written: u64,
    /// Bytes read back from spill / intermediate files.
    pub disk_bytes_read: u64,
    /// Number of file writes.
    pub disk_writes: u64,
    /// Number of file reads.
    pub disk_reads: u64,
    /// Bytes replicated to workers via broadcast variables.
    pub broadcast_bytes: u64,
}

/// Thread-safe registry collecting stage records and I/O counters for one
/// engine. Cheap to clone (shared interior).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    stages: Arc<Mutex<Vec<StageRecord>>>,
    counters: Arc<Counters>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed stage.
    pub fn push_stage(&self, record: StageRecord) {
        self.stages.lock().push(record);
    }

    /// All stages recorded since construction or the last [`Self::drain`].
    pub fn stages(&self) -> Vec<StageRecord> {
        self.stages.lock().clone()
    }

    /// Remove and return all recorded stages (counters are left untouched).
    pub fn drain(&self) -> Vec<StageRecord> {
        std::mem::take(&mut *self.stages.lock())
    }

    /// Number of stages executed so far.
    pub fn stage_count(&self) -> usize {
        self.stages.lock().len()
    }

    /// Attach shuffle volume to the most recently recorded stage (used by
    /// shuffle operators, which only know the volume after the map side ran).
    pub fn set_last_stage_shuffle(&self, records: u64, bytes: u64) {
        if let Some(last) = self.stages.lock().last_mut() {
            last.shuffled_records = records;
            last.shuffled_bytes = bytes;
        }
    }

    /// Record one file write of `bytes` bytes.
    pub fn add_disk_write(&self, bytes: u64) {
        self.counters
            .disk_bytes_written
            .fetch_add(bytes, Ordering::Relaxed);
        self.counters.disk_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one file read of `bytes` bytes.
    pub fn add_disk_read(&self, bytes: u64) {
        self.counters
            .disk_bytes_read
            .fetch_add(bytes, Ordering::Relaxed);
        self.counters.disk_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `bytes` bytes of broadcast replication.
    pub fn add_broadcast(&self, bytes: u64) {
        self.counters
            .broadcast_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Point-in-time copy of the I/O counters.
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            disk_bytes_written: self.counters.disk_bytes_written.load(Ordering::Relaxed),
            disk_bytes_read: self.counters.disk_bytes_read.load(Ordering::Relaxed),
            disk_writes: self.counters.disk_writes.load(Ordering::Relaxed),
            disk_reads: self.counters.disk_reads.load(Ordering::Relaxed),
            broadcast_bytes: self.counters.broadcast_bytes.load(Ordering::Relaxed),
        }
    }

    /// Sum of all task seconds across all recorded stages.
    pub fn total_task_secs(&self) -> f64 {
        self.stages
            .lock()
            .iter()
            .map(StageRecord::total_task_secs)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(label: &str, nanos: &[u64]) -> StageRecord {
        StageRecord {
            label: label.to_string(),
            tasks: nanos
                .iter()
                .enumerate()
                .map(|(i, &n)| TaskRecord {
                    partition: i,
                    records_in: 10,
                    records_out: 5,
                    nanos: n,
                })
                .collect(),
            shuffled_records: 0,
            shuffled_bytes: 0,
        }
    }

    #[test]
    fn push_and_drain() {
        let m = MetricsRegistry::new();
        m.push_stage(stage("a", &[1_000_000_000]));
        m.push_stage(stage("b", &[500_000_000, 500_000_000]));
        assert_eq!(m.stage_count(), 2);
        assert!((m.total_task_secs() - 2.0).abs() < 1e-9);
        let drained = m.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(m.stage_count(), 0);
    }

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.add_disk_write(100);
        m.add_disk_write(50);
        m.add_disk_read(30);
        m.add_broadcast(8);
        let c = m.counters();
        assert_eq!(c.disk_bytes_written, 150);
        assert_eq!(c.disk_writes, 2);
        assert_eq!(c.disk_bytes_read, 30);
        assert_eq!(c.disk_reads, 1);
        assert_eq!(c.broadcast_bytes, 8);
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m2.push_stage(stage("x", &[1]));
        assert_eq!(m.stage_count(), 1);
    }

    #[test]
    fn stage_record_aggregates() {
        let s = stage("s", &[100, 200, 300]);
        assert_eq!(s.records_out(), 15);
        assert!((s.total_task_secs() - 600e-9).abs() < 1e-15);
    }
}
