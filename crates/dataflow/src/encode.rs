//! Fixed-layout binary encoding for records that cross a shuffle boundary or
//! are spilled to disk by the block manager.
//!
//! The paper's Spark substrate pays serialization costs whenever data is
//! shuffled between executors or evicted from the block store; this trait is
//! how the reproduction charges the same costs. The format is little-endian,
//! length-prefixed for variable-size types, and deliberately simple — it only
//! needs to round-trip inside one process/machine.

/// A value that can be written to and read back from a byte buffer.
///
/// Implementations must guarantee `decode(encode(x)) == x` and must consume
/// exactly the bytes they wrote (so values can be streamed back to back).
pub trait Encode: Sized {
    /// Append the binary form of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Read one value from the front of `buf`, advancing it past the bytes
    /// consumed. Panics on malformed input (spill files are produced by this
    /// same process; corruption is a logic error, not an expected condition).
    fn decode(buf: &mut &[u8]) -> Self;

    /// Approximate in-memory footprint in bytes, used by the block manager
    /// for budget accounting. Defaults to the encoded size.
    fn size_estimate(&self) -> usize {
        let mut tmp = Vec::new();
        self.encode(&mut tmp);
        tmp.len()
    }
}

#[inline]
fn take<'a>(buf: &mut &'a [u8], n: usize) -> &'a [u8] {
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    head
}

macro_rules! impl_encode_prim {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn decode(buf: &mut &[u8]) -> Self {
                let mut bytes = [0u8; std::mem::size_of::<$t>()];
                bytes.copy_from_slice(take(buf, std::mem::size_of::<$t>()));
                <$t>::from_le_bytes(bytes)
            }
            #[inline]
            fn size_estimate(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

impl_encode_prim!(u8, u16, u32, u64, u128, i8, i16, i32, i64, f32, f64);

impl Encode for bool {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    #[inline]
    fn decode(buf: &mut &[u8]) -> Self {
        take(buf, 1)[0] != 0
    }
    #[inline]
    fn size_estimate(&self) -> usize {
        1
    }
}

impl Encode for () {
    #[inline]
    fn encode(&self, _out: &mut Vec<u8>) {}
    #[inline]
    fn decode(_buf: &mut &[u8]) -> Self {}
    #[inline]
    fn size_estimate(&self) -> usize {
        0
    }
}

impl Encode for usize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    #[inline]
    fn decode(buf: &mut &[u8]) -> Self {
        u64::decode(buf) as usize
    }
    #[inline]
    fn size_estimate(&self) -> usize {
        8
    }
}

macro_rules! impl_encode_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            #[inline]
            fn decode(buf: &mut &[u8]) -> Self {
                ($($name::decode(buf),)+)
            }
            #[inline]
            fn size_estimate(&self) -> usize {
                0 $(+ self.$idx.size_estimate())+
            }
        }
    };
}

impl_encode_tuple!(A: 0);
impl_encode_tuple!(A: 0, B: 1);
impl_encode_tuple!(A: 0, B: 1, C: 2);
impl_encode_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Self {
        let n = u64::decode(buf) as usize;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(buf));
        }
        v
    }
    fn size_estimate(&self) -> usize {
        8 + self.iter().map(Encode::size_estimate).sum::<usize>()
    }
}

impl<T: Encode> Encode for Box<[T]> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self.iter() {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Self {
        Vec::<T>::decode(buf).into_boxed_slice()
    }
    fn size_estimate(&self) -> usize {
        8 + self.iter().map(Encode::size_estimate).sum::<usize>()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Self {
        match take(buf, 1)[0] {
            0 => None,
            _ => Some(T::decode(buf)),
        }
    }
    fn size_estimate(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::size_estimate)
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Self {
        let n = u64::decode(buf) as usize;
        match String::from_utf8(take(buf, n).to_vec()) {
            Ok(s) => s,
            // Spill/shuffle buffers are written by this same process as
            // valid UTF-8; invalid bytes mean on-disk corruption, which
            // must fail loudly rather than yield silently mangled data.
            Err(e) => unreachable!("corrupted string in encoded buffer: {e}"),
        }
    }
    fn size_estimate(&self) -> usize {
        8 + self.len()
    }
}

impl<T: Encode> Encode for std::sync::Arc<[T]> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self.iter() {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Self {
        Vec::<T>::decode(buf).into()
    }
    fn size_estimate(&self) -> usize {
        8 + self.iter().map(Encode::size_estimate).sum::<usize>()
    }
}

/// A [`sirum_table::ColSlice`] encodes as its *in-range* values only — the shared
/// buffer outside the range never crosses a spill/shuffle boundary — and
/// decodes to a fresh full-range slice over its own buffer. Zero-copy
/// sharing is an in-memory property; a round trip preserves the values.
impl<T: Encode> Encode for sirum_table::ColSlice<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self.iter() {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Self {
        Vec::<T>::decode(buf).into()
    }
    fn size_estimate(&self) -> usize {
        8 + self.iter().map(Encode::size_estimate).sum::<usize>()
    }
}

/// Write one compressed segment: a format tag then its payload.
pub fn encode_segment(seg: &sirum_table::Segment, out: &mut Vec<u8>) {
    match seg {
        sirum_table::Segment::Raw(values) => {
            out.push(0);
            (values.len() as u64).encode(out);
            for &v in values.iter() {
                v.encode(out);
            }
        }
        sirum_table::Segment::Packed { bits, len, words } => {
            out.push(1);
            bits.encode(out);
            len.encode(out);
            (words.len() as u64).encode(out);
            for &w in words.iter() {
                w.encode(out);
            }
        }
        sirum_table::Segment::Rle { values, ends } => {
            out.push(2);
            (values.len() as u64).encode(out);
            for &v in values.iter() {
                v.encode(out);
            }
            for &e in ends.iter() {
                e.encode(out);
            }
        }
    }
}

/// Read back one segment written by [`encode_segment`].
///
/// # Panics
/// Panics on an unknown format tag (on-disk corruption).
pub fn decode_segment(buf: &mut &[u8]) -> sirum_table::Segment {
    match take(buf, 1)[0] {
        0 => {
            let n = u64::decode(buf) as usize;
            sirum_table::Segment::Raw((0..n).map(|_| u32::decode(buf)).collect())
        }
        1 => {
            let bits = u32::decode(buf);
            let len = u32::decode(buf);
            let n = u64::decode(buf) as usize;
            sirum_table::Segment::Packed {
                bits,
                len,
                words: (0..n).map(|_| u64::decode(buf)).collect(),
            }
        }
        2 => {
            let runs = u64::decode(buf) as usize;
            sirum_table::Segment::Rle {
                values: (0..runs).map(|_| u32::decode(buf)).collect(),
                ends: (0..runs).map(|_| u32::decode(buf)).collect(),
            }
        }
        // Spill buffers are written by this same process; an unknown tag is
        // on-disk corruption and must fail loudly.
        tag => unreachable!("corrupted segment tag {tag} in encoded buffer"),
    }
}

/// Per-column representation tags in the [`sirum_table::FrameView`] wire format.
const COL_RAW: u8 = 0;
const COL_COMPRESSED: u8 = 1;

/// A [`sirum_table::FrameView`] encodes as its in-range column values (dimension codes
/// then measures) and decodes to a view over a fresh single-partition
/// [`sirum_table::Frame`] — this is what lets columnar partitions spill to
/// disk in `DiskMr` mode and under block-store memory pressure while
/// staying range views over shared columns in memory.
///
/// Raw columns write their codes verbatim; compressed columns write their
/// overlapping segments (interior segments byte-for-byte as stored,
/// boundary segments clipped to the view's range), so spilled partitions
/// stay compressed on disk and decode back without re-encoding.
impl Encode for sirum_table::FrameView {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.num_dims() as u64).encode(out);
        (self.len() as u64).encode(out);
        // Dictionary cardinalities ride along so a decoded partition derives
        // the same packed rule-code layout as the frame it was cut from —
        // a partition's observed max code can under-estimate the true width.
        for &card in self.cards() {
            card.encode(out);
        }
        for j in 0..self.num_dims() {
            match self.frame().column(j) {
                sirum_table::Column::Raw(_) => {
                    out.push(COL_RAW);
                    for &code in self.col(j) {
                        code.encode(out);
                    }
                }
                sirum_table::Column::Compressed(c) => {
                    out.push(COL_COMPRESSED);
                    let segments = c.slice_segments(self.start(), self.len());
                    (segments.len() as u64).encode(out);
                    for seg in &segments {
                        encode_segment(seg, out);
                    }
                }
            }
        }
        for &m in self.measures() {
            m.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Self {
        let d = u64::decode(buf) as usize;
        let n = u64::decode(buf) as usize;
        let cards: Vec<u32> = (0..d).map(|_| u32::decode(buf)).collect();
        let mut raw_cols: Vec<Vec<u32>> = Vec::new();
        let mut compressed_cols: Vec<sirum_table::CompressedCol> = Vec::new();
        for _ in 0..d {
            match take(buf, 1)[0] {
                COL_RAW => raw_cols.push((0..n).map(|_| u32::decode(buf)).collect()),
                _ => {
                    let segs = u64::decode(buf) as usize;
                    compressed_cols.push(sirum_table::CompressedCol::from_segments(
                        (0..segs).map(|_| decode_segment(buf)).collect(),
                    ));
                }
            }
        }
        let measure: Vec<f64> = (0..n).map(|_| f64::decode(buf)).collect();
        // Frames are homogeneous (all columns raw or all compressed) — the
        // builder flushes every column together, so a mixed stream cannot be
        // produced by this process's encoder.
        if raw_cols.is_empty() && !compressed_cols.is_empty() {
            sirum_table::Frame::from_compressed_columns_with_cards(compressed_cols, measure, cards)
                .view()
        } else {
            // lint:allow(SL001) — framing invariant of this process's own encoder
            assert!(
                compressed_cols.is_empty(),
                "mixed raw/compressed columns in encoded frame"
            );
            sirum_table::Frame::from_columns_with_cards(raw_cols, measure, cards).view()
        }
    }
    fn size_estimate(&self) -> usize {
        // Compressed columns charge their encoded payload bytes, so budget
        // accounting sees (and rewards) the compression.
        16 + self.num_dims() * 4
            + self.frame().dim_bytes_in_range(self.start(), self.len())
            + self.len() * 8
    }
}

/// Encode a whole slice of records into one buffer (length-prefixed).
pub fn encode_records<T: Encode>(records: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + records.len() * 8);
    (records.len() as u64).encode(&mut out);
    for r in records {
        r.encode(&mut out);
    }
    out
}

/// Decode a buffer produced by [`encode_records`].
pub fn decode_records<T: Encode>(mut buf: &[u8]) -> Vec<T> {
    let buf = &mut buf;
    let n = u64::decode(buf) as usize;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(T::decode(buf));
    }
    // lint:allow(SL001) — framing invariant of this process's own encoder; corruption must not decode quietly
    assert!(buf.is_empty(), "trailing bytes after decoding {n} records");
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + PartialEq + std::fmt::Debug + Clone>(v: T) {
        let mut out = Vec::new();
        v.encode(&mut out);
        let mut slice = out.as_slice();
        let back = T::decode(&mut slice);
        assert_eq!(back, v);
        assert!(slice.is_empty(), "decoder must consume exactly its bytes");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(u128::MAX);
        round_trip(1u128 << 100);
        round_trip(-1i64);
        round_trip(3.5f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(true);
        round_trip(false);
        round_trip(123usize);
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let mut out = Vec::new();
        f64::NAN.encode(&mut out);
        let mut s = out.as_slice();
        assert!(f64::decode(&mut s).is_nan());
    }

    #[test]
    fn composites_round_trip() {
        round_trip((1u32, 2.0f64));
        round_trip((1u32, 2.0f64, 3u64, true));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(vec![1u32, u32::MAX].into_boxed_slice());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip("hello — ünïcode".to_string());
        round_trip(vec![(vec![1u32, 2], 3.5f64), (vec![], -1.0)]);
    }

    #[test]
    fn record_batches_round_trip() {
        let records: Vec<(Box<[u32]>, f64, u64)> = (0..100)
            .map(|i| {
                (
                    vec![i, i * 2, u32::MAX].into_boxed_slice(),
                    f64::from(i) * 0.5,
                    u64::from(i),
                )
            })
            .collect();
        let buf = encode_records(&records);
        let back: Vec<(Box<[u32]>, f64, u64)> = decode_records(&buf);
        assert_eq!(back, records);
    }

    #[test]
    fn size_estimates_match_encoded_len_for_fixed_types() {
        let v = (1u32, 2.0f64, 3u64);
        let mut out = Vec::new();
        v.encode(&mut out);
        assert_eq!(v.size_estimate(), out.len());
    }

    #[test]
    #[should_panic(expected = "trailing bytes")]
    fn trailing_bytes_rejected() {
        let mut buf = encode_records(&[1u32, 2]);
        buf.push(0xFF);
        let _ = decode_records::<u32>(&buf);
    }

    #[test]
    fn compressed_frame_views_round_trip_without_reencoding() {
        use sirum_table::{generators, ColScratch, Compression, Frame, FrameView};
        let t = generators::income_like(500, 3);
        let frame = Frame::from_table_with(&t, Compression::Always);
        let raw = Frame::from_table(&t);
        // A mid-frame view with unaligned segment boundaries.
        let view = frame.view().slice(37, 401);
        let mut out = Vec::new();
        view.encode(&mut out);
        let mut slice = out.as_slice();
        let back = FrameView::decode(&mut slice);
        assert!(slice.is_empty());
        assert_eq!(back.len(), 401);
        assert_eq!(back.cards(), view.cards());
        assert!(
            back.frame().is_compressed(),
            "spill keeps columns compressed"
        );
        assert_eq!(back.measures(), view.measures());
        let mut scratch = ColScratch::new();
        for (s, n) in back.morsel_bounds() {
            let cols = back.morsel_cols(s, n, &mut scratch);
            for (j, col) in cols.iter().enumerate() {
                assert_eq!(*col, &raw.col(j)[37 + s..37 + s + n], "col {j}");
            }
        }
        // Budget accounting charges encoded bytes: far below the raw footprint.
        assert!(view.size_estimate() < raw.view().slice(37, 401).size_estimate());
    }
}
