//! Fixed-layout binary encoding for records that cross a shuffle boundary or
//! are spilled to disk by the block manager.
//!
//! The paper's Spark substrate pays serialization costs whenever data is
//! shuffled between executors or evicted from the block store; this trait is
//! how the reproduction charges the same costs. The format is little-endian,
//! length-prefixed for variable-size types, and deliberately simple — it only
//! needs to round-trip inside one process/machine.

/// A value that can be written to and read back from a byte buffer.
///
/// Implementations must guarantee `decode(encode(x)) == x` and must consume
/// exactly the bytes they wrote (so values can be streamed back to back).
pub trait Encode: Sized {
    /// Append the binary form of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Read one value from the front of `buf`, advancing it past the bytes
    /// consumed. Panics on malformed input (spill files are produced by this
    /// same process; corruption is a logic error, not an expected condition).
    fn decode(buf: &mut &[u8]) -> Self;

    /// Approximate in-memory footprint in bytes, used by the block manager
    /// for budget accounting. Defaults to the encoded size.
    fn size_estimate(&self) -> usize {
        let mut tmp = Vec::new();
        self.encode(&mut tmp);
        tmp.len()
    }
}

#[inline]
fn take<'a>(buf: &mut &'a [u8], n: usize) -> &'a [u8] {
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    head
}

macro_rules! impl_encode_prim {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn decode(buf: &mut &[u8]) -> Self {
                let mut bytes = [0u8; std::mem::size_of::<$t>()];
                bytes.copy_from_slice(take(buf, std::mem::size_of::<$t>()));
                <$t>::from_le_bytes(bytes)
            }
            #[inline]
            fn size_estimate(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

impl_encode_prim!(u8, u16, u32, u64, u128, i8, i16, i32, i64, f32, f64);

impl Encode for bool {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    #[inline]
    fn decode(buf: &mut &[u8]) -> Self {
        take(buf, 1)[0] != 0
    }
    #[inline]
    fn size_estimate(&self) -> usize {
        1
    }
}

impl Encode for () {
    #[inline]
    fn encode(&self, _out: &mut Vec<u8>) {}
    #[inline]
    fn decode(_buf: &mut &[u8]) -> Self {}
    #[inline]
    fn size_estimate(&self) -> usize {
        0
    }
}

impl Encode for usize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    #[inline]
    fn decode(buf: &mut &[u8]) -> Self {
        u64::decode(buf) as usize
    }
    #[inline]
    fn size_estimate(&self) -> usize {
        8
    }
}

macro_rules! impl_encode_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            #[inline]
            fn decode(buf: &mut &[u8]) -> Self {
                ($($name::decode(buf),)+)
            }
            #[inline]
            fn size_estimate(&self) -> usize {
                0 $(+ self.$idx.size_estimate())+
            }
        }
    };
}

impl_encode_tuple!(A: 0);
impl_encode_tuple!(A: 0, B: 1);
impl_encode_tuple!(A: 0, B: 1, C: 2);
impl_encode_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Self {
        let n = u64::decode(buf) as usize;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(buf));
        }
        v
    }
    fn size_estimate(&self) -> usize {
        8 + self.iter().map(Encode::size_estimate).sum::<usize>()
    }
}

impl<T: Encode> Encode for Box<[T]> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self.iter() {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Self {
        Vec::<T>::decode(buf).into_boxed_slice()
    }
    fn size_estimate(&self) -> usize {
        8 + self.iter().map(Encode::size_estimate).sum::<usize>()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Self {
        match take(buf, 1)[0] {
            0 => None,
            _ => Some(T::decode(buf)),
        }
    }
    fn size_estimate(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::size_estimate)
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Self {
        let n = u64::decode(buf) as usize;
        match String::from_utf8(take(buf, n).to_vec()) {
            Ok(s) => s,
            // Spill/shuffle buffers are written by this same process as
            // valid UTF-8; invalid bytes mean on-disk corruption, which
            // must fail loudly rather than yield silently mangled data.
            Err(e) => unreachable!("corrupted string in encoded buffer: {e}"),
        }
    }
    fn size_estimate(&self) -> usize {
        8 + self.len()
    }
}

impl<T: Encode> Encode for std::sync::Arc<[T]> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self.iter() {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Self {
        Vec::<T>::decode(buf).into()
    }
    fn size_estimate(&self) -> usize {
        8 + self.iter().map(Encode::size_estimate).sum::<usize>()
    }
}

/// A [`sirum_table::ColSlice`] encodes as its *in-range* values only — the shared
/// buffer outside the range never crosses a spill/shuffle boundary — and
/// decodes to a fresh full-range slice over its own buffer. Zero-copy
/// sharing is an in-memory property; a round trip preserves the values.
impl<T: Encode> Encode for sirum_table::ColSlice<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self.iter() {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Self {
        Vec::<T>::decode(buf).into()
    }
    fn size_estimate(&self) -> usize {
        8 + self.iter().map(Encode::size_estimate).sum::<usize>()
    }
}

/// A [`sirum_table::FrameView`] encodes as its in-range column values (dimension codes
/// then measures) and decodes to a view over a fresh single-partition
/// [`sirum_table::Frame`] — this is what lets columnar partitions spill to
/// disk in `DiskMr` mode and under block-store memory pressure while
/// staying range views over shared columns in memory.
impl Encode for sirum_table::FrameView {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.num_dims() as u64).encode(out);
        (self.len() as u64).encode(out);
        // Dictionary cardinalities ride along so a decoded partition derives
        // the same packed rule-code layout as the frame it was cut from —
        // a partition's observed max code can under-estimate the true width.
        for &card in self.cards() {
            card.encode(out);
        }
        for j in 0..self.num_dims() {
            for &code in self.col(j) {
                code.encode(out);
            }
        }
        for &m in self.measures() {
            m.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Self {
        let d = u64::decode(buf) as usize;
        let n = u64::decode(buf) as usize;
        let cards: Vec<u32> = (0..d).map(|_| u32::decode(buf)).collect();
        let cols: Vec<Vec<u32>> = (0..d)
            .map(|_| (0..n).map(|_| u32::decode(buf)).collect())
            .collect();
        let measure: Vec<f64> = (0..n).map(|_| f64::decode(buf)).collect();
        sirum_table::Frame::from_columns_with_cards(cols, measure, cards).view()
    }
    fn size_estimate(&self) -> usize {
        16 + self.num_dims() * 4 + self.len() * (self.num_dims() * 4 + 8)
    }
}

/// Encode a whole slice of records into one buffer (length-prefixed).
pub fn encode_records<T: Encode>(records: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + records.len() * 8);
    (records.len() as u64).encode(&mut out);
    for r in records {
        r.encode(&mut out);
    }
    out
}

/// Decode a buffer produced by [`encode_records`].
pub fn decode_records<T: Encode>(mut buf: &[u8]) -> Vec<T> {
    let buf = &mut buf;
    let n = u64::decode(buf) as usize;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(T::decode(buf));
    }
    // lint:allow(SL001) — framing invariant of this process's own encoder; corruption must not decode quietly
    assert!(buf.is_empty(), "trailing bytes after decoding {n} records");
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + PartialEq + std::fmt::Debug + Clone>(v: T) {
        let mut out = Vec::new();
        v.encode(&mut out);
        let mut slice = out.as_slice();
        let back = T::decode(&mut slice);
        assert_eq!(back, v);
        assert!(slice.is_empty(), "decoder must consume exactly its bytes");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(u128::MAX);
        round_trip(1u128 << 100);
        round_trip(-1i64);
        round_trip(3.5f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(true);
        round_trip(false);
        round_trip(123usize);
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let mut out = Vec::new();
        f64::NAN.encode(&mut out);
        let mut s = out.as_slice();
        assert!(f64::decode(&mut s).is_nan());
    }

    #[test]
    fn composites_round_trip() {
        round_trip((1u32, 2.0f64));
        round_trip((1u32, 2.0f64, 3u64, true));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(vec![1u32, u32::MAX].into_boxed_slice());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip("hello — ünïcode".to_string());
        round_trip(vec![(vec![1u32, 2], 3.5f64), (vec![], -1.0)]);
    }

    #[test]
    fn record_batches_round_trip() {
        let records: Vec<(Box<[u32]>, f64, u64)> = (0..100)
            .map(|i| {
                (
                    vec![i, i * 2, u32::MAX].into_boxed_slice(),
                    f64::from(i) * 0.5,
                    u64::from(i),
                )
            })
            .collect();
        let buf = encode_records(&records);
        let back: Vec<(Box<[u32]>, f64, u64)> = decode_records(&buf);
        assert_eq!(back, records);
    }

    #[test]
    fn size_estimates_match_encoded_len_for_fixed_types() {
        let v = (1u32, 2.0f64, 3u64);
        let mut out = Vec::new();
        v.encode(&mut out);
        assert_eq!(v.size_estimate(), out.len());
    }

    #[test]
    #[should_panic(expected = "trailing bytes")]
    fn trailing_bytes_rejected() {
        let mut buf = encode_records(&[1u32, 2]);
        buf.push(0xFF);
        let _ = decode_records::<u32>(&buf);
    }
}
