//! Deterministic cluster cost model.
//!
//! The thesis evaluates SIRUM on a 16-node Spark/YARN cluster; this
//! reproduction runs on a single machine. The engine measures exact per-task
//! work (wall time of each partition's task, shuffle volumes, stage counts),
//! and this module replays those measurements through a schedule for a
//! hypothetical cluster of `E` executors × `C` cores: tasks are placed with a
//! greedy longest-processing-time (LPT) heuristic, shuffles are charged
//! network time proportional to volume divided by the executor count, every
//! stage pays a scheduling overhead, and an optional straggler inflates one
//! executor. This reproduces the *shapes* of the strong/weak-scaling figures
//! (5.16/5.17) — sub-linear scaling for small inputs, stragglers bending the
//! weak-scaling line — without needing 16 physical nodes.

use crate::metrics::StageRecord;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A hypothetical cluster to replay measured stages onto.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of executors (the paper scales 2..16).
    pub executors: usize,
    /// Task slots per executor (the paper's nodes have 24 cores).
    pub cores_per_executor: usize,
    /// Scheduling/launch overhead charged once per stage, seconds.
    pub stage_startup_secs: f64,
    /// Network transfer time per megabyte of shuffled data, divided by the
    /// executor count (more executors = more aggregate bandwidth).
    pub shuffle_secs_per_mb: f64,
    /// Slowdown multiplier applied to one executor's slots (§5.7.2 observes
    /// stragglers breaking weak scaling; 1.0 disables).
    pub straggler_slowdown: f64,
}

impl ClusterSpec {
    /// The paper's cluster: 16 executors, 24 cores each.
    pub fn paper_cluster() -> Self {
        ClusterSpec {
            executors: 16,
            cores_per_executor: 24,
            stage_startup_secs: 0.05,
            shuffle_secs_per_mb: 0.01,
            straggler_slowdown: 1.0,
        }
    }

    /// Same cluster with `executors` nodes.
    pub fn with_executors(mut self, executors: usize) -> Self {
        self.executors = executors.max(1);
        self
    }

    /// Enable a straggler node with the given slowdown factor.
    pub fn with_straggler(mut self, slowdown: f64) -> Self {
        self.straggler_slowdown = slowdown.max(1.0);
        self
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

/// Ordered slot load for the LPT heap (f64 loads via total_cmp).
#[derive(PartialEq)]
struct Slot {
    load: f64,
    /// Work-time multiplier (straggler slots > 1.0).
    slow: f64,
}

impl Eq for Slot {}
impl PartialOrd for Slot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Slot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.load.total_cmp(&other.load)
    }
}

/// Modeled completion time of a single stage on the given cluster.
pub fn stage_makespan(stage: &StageRecord, spec: &ClusterSpec) -> f64 {
    let slots_n = spec.executors * spec.cores_per_executor.max(1);
    let mut tasks: Vec<f64> = stage.tasks.iter().map(|t| t.nanos as f64 / 1e9).collect();
    tasks.sort_by(|a, b| b.total_cmp(a));

    // Min-heap of slot loads; first executor's slots run slower if a
    // straggler is configured.
    let mut heap: BinaryHeap<Reverse<Slot>> = (0..slots_n)
        .map(|i| {
            let slow = if i < spec.cores_per_executor {
                spec.straggler_slowdown
            } else {
                1.0
            };
            Reverse(Slot { load: 0.0, slow })
        })
        .collect();
    for t in tasks {
        let Some(Reverse(mut slot)) = heap.pop() else {
            unreachable!("cluster specs have at least one slot");
        };
        slot.load += t * slot.slow;
        heap.push(Reverse(slot));
    }
    let compute = heap
        .into_iter()
        .map(|Reverse(s)| s.load)
        .fold(0.0f64, f64::max);

    let shuffle_mb = stage.shuffled_bytes as f64 / (1024.0 * 1024.0);
    let shuffle = shuffle_mb * spec.shuffle_secs_per_mb / spec.executors as f64;
    spec.stage_startup_secs + compute + shuffle
}

/// Modeled completion time of a whole run (sequence of stages).
pub fn makespan(stages: &[StageRecord], spec: &ClusterSpec) -> f64 {
    stages.iter().map(|s| stage_makespan(s, spec)).sum()
}

/// Modeled per-record slowdown of a **row-materializing** scan relative to
/// a zero-copy columnar scan. A row-major pass over `(Box<[u32]>, …)`
/// tuples pays one heap allocation plus a pointer chase per row on every
/// dataset rewrite; a columnar pass walks contiguous `Arc`-shared columns
/// and allocates nothing. The factor is calibrated from the repo's
/// `prepared`/`gain_sweep` benches (boxed-row vs columnar data path) and
/// lets planners ([`crate::cost`]-replaying `explain()` implementations)
/// model both representations from one per-record constant.
pub const ROW_MATERIALIZE_FACTOR: f64 = 2.0;

/// Build the modeled [`StageRecord`] of a **fused partition-parallel
/// sweep**: `records` units of per-tuple work split evenly over
/// `partitions` tasks at `nanos_per_record` each, with **zero shuffle
/// volume** — the sweep's reduction is a driver-side, partition-ordered
/// fold of per-partition accumulators, so nothing crosses a shuffle
/// boundary. Planners (e.g. `service.explain()`) replay this record
/// through [`stage_makespan`] alongside measured/modeled staged pipelines
/// to predict what fusing the candidate evaluation saves.
pub fn modeled_sweep_stage(records: u64, partitions: usize, nanos_per_record: f64) -> StageRecord {
    use crate::metrics::TaskRecord;
    let partitions = partitions.max(1);
    let per_task = records.div_ceil(partitions as u64);
    StageRecord {
        label: "gain-sweep".to_string(),
        tasks: (0..partitions)
            .map(|p| TaskRecord {
                partition: p,
                records_in: per_task,
                records_out: 1,
                nanos: (per_task as f64 * nanos_per_record) as u64,
            })
            .collect(),
        shuffled_records: 0,
        shuffled_bytes: 0,
    }
}

/// Modeled DRAM streaming bandwidth of one scan thread, in bytes per
/// nanosecond (≈ 8 GB/s per core on the calibration container) — what a
/// sequential columnar pass moves when the working set exceeds cache.
pub const SCAN_BANDWIDTH_BYTES_PER_NANO: f64 = 8.0;

/// Modeled per-value cost of unpacking one compressed dimension code
/// (bit-packed word extraction or RLE run lookup) into the morsel scratch
/// buffer during a compressed columnar scan.
pub const DECODE_NANOS_PER_VALUE: f64 = 0.4;

/// Modeled per-record nanoseconds of one columnar scan pass over `dims`
/// dimension columns carrying `bytes_per_row` of dimension payload: memory
/// traffic at streaming [`SCAN_BANDWIDTH_BYTES_PER_NANO`], plus a
/// per-value decode tax when the columns are `compressed`.
///
/// This is the compressed-vs-raw trade `explain()` prices: compression
/// shrinks the traffic term (a packed column moves `ceil(log2 card)` bits
/// per value instead of 32) but pays [`DECODE_NANOS_PER_VALUE`] per value
/// to fill the scratch buffer, so narrow dictionaries win on big tables
/// while already-cache-resident tables gain nothing.
pub fn scan_record_nanos(dims: usize, bytes_per_row: f64, compressed: bool) -> f64 {
    let traffic = bytes_per_row / SCAN_BANDWIDTH_BYTES_PER_NANO;
    if compressed {
        traffic + dims as f64 * DECODE_NANOS_PER_VALUE
    } else {
        traffic
    }
}

/// How a sweep partition aggregates its per-tuple `(code, m, m̂)` emissions
/// into one `(Σm, Σm̂, pairs)` entry per distinct rule code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineStrategy {
    /// Probe-or-insert into an `FxHashMap<code, agg>` as codes are emitted.
    /// Wins while the distinct-key working set stays cache-resident: each
    /// emission is one integer hash plus one (usually L1/L2-hit) probe.
    HashProbe,
    /// Radix-scatter every emission into one of 256 hash-bucketed lanes
    /// (a sequential append), then aggregate each lane through its own
    /// small map. Each lane holds ~1/256 of the distinct keys, so lane
    /// maps stay cache-resident even when one flat map would spill —
    /// trading one extra sequential pass for DRAM-latency-free probes.
    RadixGroup,
}

impl std::fmt::Display for CombineStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CombineStrategy::HashProbe => write!(f, "hash-probe"),
            CombineStrategy::RadixGroup => write!(f, "radix-group"),
        }
    }
}

/// Approximate footprint of one hash-map entry for a packed sweep
/// accumulator: a ≤16-byte code plus a 24-byte aggregate, rounded up for
/// table overhead (control bytes, load factor ≈ 0.87).
const COMBINE_ENTRY_BYTES: f64 = 56.0;
/// Working-set size above which the hash accumulator is modeled as
/// cache-spilled (≈ per-core L2 on the calibration container).
const COMBINE_CACHE_BYTES: f64 = 1.0 * 1024.0 * 1024.0;
/// Modeled cost of one probe while the accumulator fits in cache.
const PROBE_HIT_NANOS: f64 = 4.0;
/// Modeled cost of one probe once the accumulator has spilled out of cache
/// (each probe is then a DRAM-latency round trip).
const PROBE_MISS_NANOS: f64 = 40.0;
/// Modeled per-record cost of the radix-group path: one sequential bucket
/// append plus one probe of a cache-resident (1/256-sized) lane map, with
/// the per-distinct lane merge amortized in.
const RADIX_NANOS_PER_RECORD: f64 = 9.0;

/// Pick the combine strategy for one sweep partition that will emit
/// `records` rule codes with roughly `distinct_hint` distinct values.
///
/// The decision replays a two-point cost model: hashing costs one probe per
/// emission, at a hit- or miss-dominated rate depending on whether
/// `distinct_hint` entries fit the modeled cache; radix-grouping costs a
/// flat per-record scatter-plus-lane-probe. Callers hint `distinct_hint`
/// with whatever ceiling they have — the emission count itself (rows × |s|
/// pairs) is the hard bound on how many distinct codes a partition can
/// produce, and in practice far fewer survive.
///
/// Both strategies produce bit-identical aggregates (a key's emissions all
/// land in one lane in emission order, so per-code float summation order is
/// preserved), which is what makes this a pure performance decision.
pub fn choose_combine(records: u64, distinct_hint: u64) -> CombineStrategy {
    if records == 0 {
        return CombineStrategy::HashProbe;
    }
    let probe = if distinct_hint as f64 * COMBINE_ENTRY_BYTES <= COMBINE_CACHE_BYTES {
        PROBE_HIT_NANOS
    } else {
        PROBE_MISS_NANOS
    };
    let hash_cost = records as f64 * probe;
    let radix_cost = records as f64 * RADIX_NANOS_PER_RECORD;
    if radix_cost < hash_cost {
        CombineStrategy::RadixGroup
    } else {
        CombineStrategy::HashProbe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TaskRecord;

    fn stage(task_secs: &[f64], shuffled_bytes: u64) -> StageRecord {
        StageRecord {
            label: "s".into(),
            tasks: task_secs
                .iter()
                .enumerate()
                .map(|(i, &s)| TaskRecord {
                    partition: i,
                    records_in: 0,
                    records_out: 0,
                    nanos: (s * 1e9) as u64,
                })
                .collect(),
            shuffled_records: 0,
            shuffled_bytes,
        }
    }

    fn spec(executors: usize, cores: usize) -> ClusterSpec {
        ClusterSpec {
            executors,
            cores_per_executor: cores,
            stage_startup_secs: 0.0,
            shuffle_secs_per_mb: 0.0,
            straggler_slowdown: 1.0,
        }
    }

    #[test]
    fn single_slot_is_sequential() {
        let s = stage(&[1.0, 2.0, 3.0], 0);
        assert!((stage_makespan(&s, &spec(1, 1)) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn equal_tasks_divide_evenly() {
        let s = stage(&[1.0; 8], 0);
        assert!((stage_makespan(&s, &spec(4, 2)) - 1.0).abs() < 1e-9);
        assert!((stage_makespan(&s, &spec(2, 2)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn more_executors_never_slower() {
        let s = stage(&[0.5, 1.0, 0.25, 2.0, 0.75, 1.5, 0.1, 0.9], 0);
        let mut last = f64::INFINITY;
        for e in [1, 2, 4, 8] {
            let m = stage_makespan(&s, &spec(e, 1));
            assert!(m <= last + 1e-12, "executors={e}");
            last = m;
        }
    }

    #[test]
    fn scaling_is_sublinear_with_skewed_tasks() {
        // One dominant task bounds the makespan from below.
        let s = stage(&[4.0, 0.5, 0.5, 0.5, 0.5], 0);
        assert!((stage_makespan(&s, &spec(8, 1)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn shuffle_cost_shrinks_with_executors() {
        let mut sp = spec(2, 1);
        sp.shuffle_secs_per_mb = 1.0;
        let s = stage(&[], 4 * 1024 * 1024);
        let m2 = stage_makespan(&s, &sp);
        let m4 = stage_makespan(&s, &sp.with_executors(4));
        assert!((m2 - 2.0).abs() < 1e-9);
        assert!((m4 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn straggler_inflates_makespan() {
        let s = stage(&[1.0; 4], 0);
        let base = stage_makespan(&s, &spec(4, 1));
        let strag = stage_makespan(&s, &spec(4, 1).with_straggler(1.5));
        assert!((base - 1.0).abs() < 1e-9);
        assert!((strag - 1.5).abs() < 1e-9);
    }

    #[test]
    fn modeled_sweep_stage_parallelizes_and_never_shuffles() {
        let s = modeled_sweep_stage(8_000_000, 8, 100.0);
        assert_eq!(s.tasks.len(), 8);
        assert_eq!(s.shuffled_records, 0);
        assert_eq!(s.shuffled_bytes, 0);
        // 8 × 0.1s tasks: 4 dual-core executors finish in one task's time.
        let par = stage_makespan(&s, &spec(4, 2));
        let seq = stage_makespan(&s, &spec(1, 1));
        assert!((par - 0.1).abs() < 1e-9, "par = {par}");
        assert!((seq - 0.8).abs() < 1e-9, "seq = {seq}");
    }

    #[test]
    fn combine_choice_tracks_the_cache_model() {
        // Empty partitions default to the probe path.
        assert_eq!(choose_combine(0, 0), CombineStrategy::HashProbe);
        // Small distinct sets stay cache-resident: hashing wins regardless
        // of how many records stream through.
        assert_eq!(choose_combine(1 << 20, 1 << 10), CombineStrategy::HashProbe);
        assert_eq!(choose_combine(1 << 24, 1 << 14), CombineStrategy::HashProbe);
        // A distinct working set far beyond the modeled cache makes every
        // probe a miss; the bucketed radix path wins for realistic volumes.
        assert_eq!(
            choose_combine(1 << 20, 1 << 20),
            CombineStrategy::RadixGroup
        );
        assert_eq!(
            choose_combine(1 << 22, 1 << 22),
            CombineStrategy::RadixGroup
        );
        // Tiny partitions never buffer even when fully distinct.
        assert_eq!(choose_combine(64, 64), CombineStrategy::HashProbe);
    }

    #[test]
    fn compressed_scan_pricing_trades_bandwidth_for_decode() {
        // Raw scans are pure bandwidth: cost scales with row bytes.
        let raw_narrow = scan_record_nanos(3, 12.0, false);
        let raw_wide = scan_record_nanos(9, 36.0, false);
        assert!(raw_wide > raw_narrow);
        // The same payload compressed pays the per-value decode tax on top.
        assert!(scan_record_nanos(9, 36.0, true) > raw_wide);
        // A well-packed wide row (9 dims in < 4 bytes vs 36 raw) still
        // scans cheaper than its raw representation — the tlc-shaped case.
        assert!(scan_record_nanos(9, 3.75, true) < raw_wide);
        // But a narrow cache-friendly table gains next to nothing: the
        // per-value decode tax roughly cancels the bandwidth saving —
        // which is why `Compression::Auto` leaves small tables raw.
        assert!((scan_record_nanos(3, 2.0, true) - raw_narrow).abs() < 0.1);
    }

    #[test]
    fn startup_charged_per_stage() {
        let mut sp = spec(1, 1);
        sp.stage_startup_secs = 0.1;
        let stages = vec![stage(&[1.0], 0), stage(&[1.0], 0)];
        assert!((makespan(&stages, &sp) - 2.2).abs() < 1e-9);
    }
}
