//! A fast, non-cryptographic hasher (FxHash-style) implemented locally so the
//! engine does not depend on external hashing crates.
//!
//! The std `SipHash` default is robust against HashDoS but measurably slow for
//! the short integer-heavy keys (rule encodings, bit masks) that dominate
//! SIRUM's shuffles. All hash maps in this workspace key on data we generate
//! ourselves, so DoS resistance is not required.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// FxHash-style multiplicative hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        // Two word-mixes instead of std's default byte-slice fallback:
        // packed u128 rule codes sit on the sweep's hottest probe path.
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash a single value with [`FxHasher`]; used for shuffle partitioning.
#[inline]
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        assert_eq!(fx_hash_one(&42u64), fx_hash_one(&42u64));
        assert_eq!(fx_hash_one(&"abc"), fx_hash_one(&"abc"));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(fx_hash_one(&1u64), fx_hash_one(&2u64));
        assert_ne!(fx_hash_one(&[1u32, 2]), fx_hash_one(&[2u32, 1]));
        // u128 mixes both halves, not just the low word.
        assert_ne!(fx_hash_one(&1u128), fx_hash_one(&(1u128 << 64 | 1)));
        assert_ne!(fx_hash_one(&0u128), fx_hash_one(&(1u128 << 127)));
    }

    #[test]
    fn byte_tails_are_mixed() {
        // Inputs that differ only in a non-word-aligned tail byte must differ.
        assert_ne!(fx_hash_one(&[1u8, 2, 3]), fx_hash_one(&[1u8, 2, 4]));
        assert_ne!(
            fx_hash_one(&[1u8, 2, 3, 4, 5]),
            fx_hash_one(&[1u8, 2, 3, 4, 6])
        );
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(vec![i, i + 1], u64::from(i));
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&vec![i, i + 1]], u64::from(i));
        }
    }

    #[test]
    fn distribution_is_reasonable() {
        // Crude avalanche check: bucketing 10k sequential integers into 64
        // buckets should not leave any bucket pathologically empty/full.
        let mut buckets = [0usize; 64];
        for i in 0..10_000u64 {
            buckets[(fx_hash_one(&i) % 64) as usize] += 1;
        }
        let min = *buckets.iter().min().unwrap();
        let max = *buckets.iter().max().unwrap();
        assert!(min > 50, "min bucket {min}");
        assert!(max < 500, "max bucket {max}");
    }
}
