//! The execution engine: a thread pool running per-partition tasks with
//! metrics collection, plus broadcast variables.

use crate::config::{EngineConfig, EngineMode};
use crate::dataset::{Dataset, Part};
use crate::encode::Encode;
use crate::error::DataflowError;
use crate::memory::BlockStore;
use crate::metrics::{MetricsRegistry, StageRecord, TaskRecord};
use parking_lot::Mutex;
use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Handle to a dataflow engine. Cheap to clone; all clones share the same
/// block store, metrics and configuration.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

pub(crate) struct EngineInner {
    pub(crate) config: EngineConfig,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) store: BlockStore,
}

/// Result of one task: the produced value plus record accounting.
pub struct TaskOutput<O> {
    /// Value produced by the task (e.g. an output partition).
    pub value: O,
    /// Records the task consumed.
    pub records_in: u64,
    /// Records the task produced.
    pub records_out: u64,
}

impl Engine {
    /// Build an engine from a configuration.
    ///
    /// # Panics
    /// Panics when the configuration is invalid or the spill directory
    /// cannot be created; use [`Engine::try_new`] on untrusted
    /// configurations to receive a [`DataflowError`] instead.
    pub fn new(config: EngineConfig) -> Self {
        match Self::try_new(config) {
            Ok(engine) => engine,
            Err(e) => crate::error::fail(e),
        }
    }

    /// Fallible form of [`Engine::new`]: validates the configuration
    /// ([`DataflowError::InvalidConfig`]) and verifies the spill directory
    /// is usable ([`DataflowError::Spill`]) before any job runs.
    pub fn try_new(config: EngineConfig) -> Result<Self, DataflowError> {
        config.validate()?;
        let metrics = MetricsRegistry::new();
        let store = BlockStore::new(
            config.memory_budget,
            config.spill_dir.clone(),
            metrics.clone(),
        );
        let engine = Engine {
            inner: Arc::new(EngineInner {
                config,
                metrics,
                store,
            }),
        };
        engine.health()?;
        Ok(engine)
    }

    /// Fork a per-job view of this engine: the clone shares the
    /// configuration and block store (so cached/spilled partitions and the
    /// memory budget stay global) but records stages into a **fresh**
    /// [`MetricsRegistry`].
    ///
    /// An ordinary [`Engine::clone`] shares the metrics too, which is what
    /// a single driver wants — but concurrent drivers on one engine would
    /// interleave their stage records, and anything derived from "the last
    /// stage" (candidate totals, ancestor counts) would become racy.
    /// Serving layers therefore give each concurrent job a fork, keeping
    /// per-job metrics deterministic while all jobs share one store.
    ///
    /// Disk I/O counters still accumulate in the *original* engine's
    /// registry (the block store keeps its metrics handle); `health()` is
    /// likewise store-global, so a poisoning spill failure surfaces to
    /// every fork.
    pub fn fork(&self) -> Engine {
        Engine {
            inner: Arc::new(EngineInner {
                config: self.inner.config.clone(),
                metrics: MetricsRegistry::new(),
                store: self.inner.store.clone(),
            }),
        }
    }

    /// Surface the first deferred dataflow failure (today: spill I/O errors
    /// recorded by the block store while workers degraded gracefully),
    /// clearing it. Drivers should check between stages and abort the run
    /// on `Err`, since partitions produced after a poisoning event may be
    /// placeholders.
    pub fn health(&self) -> Result<(), DataflowError> {
        match self.inner.store.take_poison() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Spark-like engine with default configuration.
    pub fn in_memory() -> Self {
        Self::new(EngineConfig::in_memory())
    }

    /// Hive-like engine (disk-materialized stages).
    pub fn disk_mr() -> Self {
        Self::new(EngineConfig::disk_mr())
    }

    /// PostgreSQL-like engine (single worker).
    pub fn single_thread() -> Self {
        Self::new(EngineConfig::single_thread())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// The platform emulation mode.
    pub fn mode(&self) -> EngineMode {
        self.inner.config.mode
    }

    /// The metrics registry shared by all operators of this engine.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The block store backing cached and disk-materialized partitions.
    pub fn store(&self) -> &BlockStore {
        &self.inner.store
    }

    /// Distribute `data` over `partitions` in-memory partitions.
    pub fn parallelize<T: Send + Sync + 'static>(
        &self,
        data: Vec<T>,
        partitions: usize,
    ) -> Dataset<T> {
        let partitions = partitions.max(1);
        let n = data.len();
        let chunk = n.div_ceil(partitions).max(1);
        let mut parts = Vec::with_capacity(partitions);
        let mut iter = data.into_iter();
        for _ in 0..partitions {
            let part: Vec<T> = iter.by_ref().take(chunk).collect();
            parts.push(Part::Mem(Arc::new(part)));
        }
        Dataset::from_parts(self.clone(), parts)
    }

    /// Distribute `data` using the engine's default partition count.
    pub fn parallelize_default<T: Send + Sync + 'static>(&self, data: Vec<T>) -> Dataset<T> {
        let p = self.inner.config.partitions;
        self.parallelize(data, p)
    }

    /// Replicate a value to every worker (map-side / broadcast join input).
    /// The reported broadcast volume is `bytes_hint × workers`, mirroring the
    /// cost of shipping the variable to each executor.
    pub fn broadcast_sized<T>(&self, value: T, bytes_hint: u64) -> Broadcast<T> {
        self.inner
            .metrics
            .add_broadcast(bytes_hint * self.inner.config.effective_workers() as u64);
        Broadcast {
            value: Arc::new(value),
        }
    }

    /// Broadcast an encodable value, deriving its size automatically.
    pub fn broadcast<T: Encode>(&self, value: T) -> Broadcast<T> {
        let bytes = value.size_estimate() as u64;
        self.broadcast_sized(value, bytes)
    }

    /// Execute one stage: apply `f` to every input in parallel, recording a
    /// [`StageRecord`]. `shuffle` carries (records, bytes) that crossed a
    /// shuffle boundary into this stage, for metric purposes.
    pub(crate) fn run_stage<I, O, F>(
        &self,
        label: &str,
        inputs: Vec<I>,
        shuffle: (u64, u64),
        f: F,
    ) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> TaskOutput<O> + Send + Sync,
    {
        let startup = self.inner.config.stage_startup;
        if !startup.is_zero() {
            std::thread::sleep(startup);
        }
        let workers = self
            .inner
            .config
            .effective_workers()
            .min(inputs.len().max(1));
        let n = inputs.len();
        let slots: Vec<Mutex<Option<I>>> =
            inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let outputs: Vec<Mutex<Option<(O, TaskRecord)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        let run_task = |idx: usize| {
            let Some(input) = slots[idx].lock().take() else {
                unreachable!("task input taken once");
            };
            let start = Instant::now();
            let out = f(idx, input);
            let nanos = start.elapsed().as_nanos() as u64;
            *outputs[idx].lock() = Some((
                out.value,
                TaskRecord {
                    partition: idx,
                    records_in: out.records_in,
                    records_out: out.records_out,
                    nanos,
                },
            ));
        };

        if workers <= 1 {
            for idx in 0..n {
                run_task(idx);
            }
        } else {
            let next = AtomicUsize::new(0);
            let scope_result = crossbeam::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|_| loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        run_task(idx);
                    });
                }
            });
            if let Err(payload) = scope_result {
                // A worker thread died while running a task closure; carry
                // the original panic to the driver instead of masking it.
                std::panic::resume_unwind(payload);
            }
        }

        let mut values = Vec::with_capacity(n);
        let mut tasks = Vec::with_capacity(n);
        for slot in outputs {
            let Some((value, record)) = slot.into_inner() else {
                unreachable!("every task completed");
            };
            values.push(value);
            tasks.push(record);
        }
        self.inner.metrics.push_stage(StageRecord {
            label: label.to_string(),
            tasks,
            shuffled_records: shuffle.0,
            shuffled_bytes: shuffle.1,
        });
        values
    }
}

/// A read-only variable replicated to all workers (Spark broadcast variable).
pub struct Broadcast<T> {
    value: Arc<T>,
}

impl<T> Broadcast<T> {
    /// Borrow the broadcast value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> Deref for Broadcast<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

// The service layer shares one engine across threads; keep that a compile-
// time guarantee rather than an accident of field types.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_isolates_stage_metrics_but_shares_the_store() {
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let ds = engine.parallelize((0..10u32).collect(), 2).cache();
        assert!(engine.metrics().stage_count() > 0);
        let fork = engine.fork();
        assert_eq!(fork.metrics().stage_count(), 0, "fresh registry");
        let _ = fork.parallelize((0..4u32).collect(), 2).map("id", |&x| x);
        assert_eq!(fork.metrics().stage_count(), 1);
        // The parent's registry did not see the fork's stage.
        assert!(engine.metrics().stages().iter().all(|s| s.label != "id"));
        // One shared store: the fork sees the parent's cached bytes.
        assert!(fork.store().resident_bytes() > 0);
        ds.free();
        assert_eq!(fork.store().resident_bytes(), 0);
    }

    #[test]
    fn run_stage_preserves_order_and_records_metrics() {
        let engine = Engine::new(EngineConfig::in_memory().with_workers(4));
        let outs = engine.run_stage("square", (0..10u64).collect(), (0, 0), |_, x| TaskOutput {
            value: x * x,
            records_in: 1,
            records_out: 1,
        });
        assert_eq!(outs, (0..10u64).map(|x| x * x).collect::<Vec<_>>());
        let stages = engine.metrics().stages();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].label, "square");
        assert_eq!(stages[0].tasks.len(), 10);
    }

    #[test]
    fn single_thread_mode_runs_inline() {
        let engine = Engine::single_thread();
        let outs = engine.run_stage("id", vec![1, 2, 3], (0, 0), |_, x| TaskOutput {
            value: x,
            records_in: 1,
            records_out: 1,
        });
        assert_eq!(outs, vec![1, 2, 3]);
    }

    #[test]
    fn broadcast_derefs_and_counts_bytes() {
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let b = engine.broadcast(vec![1u32, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.value()[0], 1);
        assert!(engine.metrics().counters().broadcast_bytes > 0);
    }

    #[test]
    fn parallelize_splits_evenly() {
        let engine = Engine::in_memory();
        let ds = engine.parallelize((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(ds.num_partitions(), 3);
        assert_eq!(ds.collect(), (0..10).collect::<Vec<i32>>());
    }

    #[test]
    fn parallelize_handles_empty_input() {
        let engine = Engine::in_memory();
        let ds = engine.parallelize(Vec::<u32>::new(), 4);
        assert_eq!(ds.collect(), Vec::<u32>::new());
        assert_eq!(ds.len(), 0);
    }
}
