//! Block manager: budgeted in-memory cache of dataset partitions with LRU
//! eviction to spill files, mirroring Spark's block store.
//!
//! The memory-usage-over-time traces this module records reproduce
//! Figures 4.3 and 4.4 of the thesis (RDD block memory vs elapsed time under
//! different executor memory budgets).

use crate::encode::{decode_records, encode_records, Encode};
use crate::error::DataflowError;
use crate::hash::FxHashMap;
use crate::metrics::MetricsRegistry;
use parking_lot::Mutex;
use std::any::Any;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifier of a cached partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(u64);

type AnyArc = Arc<dyn Any + Send + Sync>;
type EncodeFn = fn(&AnyArc) -> Vec<u8>;

struct Block {
    /// Decoded partition (`Arc<Vec<T>>`) when resident in memory.
    data: Option<AnyArc>,
    /// Approximate in-memory footprint, charged against the budget.
    size: usize,
    /// LRU clock value of the last access.
    last_access: u64,
    /// Spill file, present once the block has been written to disk.
    file: Option<PathBuf>,
    /// Monomorphized encoder used when this block must be spilled.
    encode: EncodeFn,
}

/// One point of the memory-usage-over-time trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemSample {
    /// Seconds since the store was created.
    pub secs: f64,
    /// Bytes of block data resident in memory at that instant.
    pub resident_bytes: usize,
}

/// Memory-pressure counters of a [`BlockStore`]: the instantaneous
/// resident set plus cumulative spill volume and eviction count. Surfaced
/// through the service layer (`GET /stats`, `/metrics`) so a loadgen run
/// can watch a capped budget working.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Bytes of block data currently resident in memory.
    pub resident_bytes: usize,
    /// Cumulative bytes written to spill/stage files since creation.
    pub spilled_bytes: u64,
    /// Cumulative count of budget-pressure evictions since creation.
    pub evictions: u64,
}

struct StoreInner {
    blocks: FxHashMap<BlockId, Block>,
    clock: u64,
    resident_bytes: usize,
    spilled_bytes: u64,
    evictions: u64,
    trace: Vec<MemSample>,
    /// First spill-I/O failure observed. The store degrades gracefully
    /// (failed evictions keep blocks resident, failed disk writes fall back
    /// to memory) and the driver surfaces this at its next health check.
    poison: Option<DataflowError>,
}

/// Thread-safe budgeted block store. Cheap to clone (shared interior).
#[derive(Clone)]
pub struct BlockStore {
    inner: Arc<Mutex<StoreInner>>,
    budget: Option<usize>,
    dir: PathBuf,
    metrics: MetricsRegistry,
    epoch: Instant,
    next_id: Arc<AtomicU64>,
}

fn encode_any<T: Encode + Send + Sync + 'static>(any: &AnyArc) -> Vec<u8> {
    match any.downcast_ref::<Vec<T>>() {
        Some(v) => encode_records(v),
        None => unreachable!("block type matches its encoder"),
    }
}

impl BlockStore {
    /// Create a store with the given budget (`None` = unbounded) spilling
    /// into a unique subdirectory of `dir`.
    pub fn new(budget: Option<usize>, dir: PathBuf, metrics: MetricsRegistry) -> Self {
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "store-{}-{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let dir = dir.join(unique);
        let poison = std::fs::create_dir_all(&dir)
            .err()
            .map(|e| DataflowError::spill("create spill directory", &dir, &e));
        BlockStore {
            inner: Arc::new(Mutex::new(StoreInner {
                blocks: FxHashMap::default(),
                clock: 0,
                resident_bytes: 0,
                spilled_bytes: 0,
                evictions: 0,
                trace: Vec::new(),
                poison,
            })),
            budget,
            dir,
            metrics,
            epoch: Instant::now(),
            next_id: Arc::new(AtomicU64::new(0)),
        }
    }

    fn alloc_id(&self) -> BlockId {
        BlockId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    fn file_for(&self, id: BlockId) -> PathBuf {
        self.dir.join(format!("block-{}.bin", id.0))
    }

    fn sample_locked(&self, inner: &mut StoreInner) {
        inner.trace.push(MemSample {
            secs: self.epoch.elapsed().as_secs_f64(),
            resident_bytes: inner.resident_bytes,
        });
    }

    /// Evict least-recently-used blocks (other than `keep`) until the
    /// resident set fits the budget. Spilled blocks are encoded and written
    /// to disk if they have no file yet. A failed eviction (spill-I/O error)
    /// poisons the store and stops evicting; blocks stay resident.
    fn enforce_budget(&self, inner: &mut StoreInner, keep: BlockId) {
        let Some(budget) = self.budget else { return };
        while inner.resident_bytes > budget {
            let victim = inner
                .blocks
                .iter()
                .filter(|(id, b)| **id != keep && b.data.is_some())
                .min_by_key(|(_, b)| b.last_access)
                .map(|(id, _)| *id);
            let Some(victim) = victim else { break };
            if !self.evict_locked(inner, victim) {
                break;
            }
        }
    }

    /// Spill one resident block. Returns `false` (leaving the block
    /// resident and the store poisoned) when the spill write fails.
    fn evict_locked(&self, inner: &mut StoreInner, id: BlockId) -> bool {
        let file = self.file_for(id);
        let Some(block) = inner.blocks.get_mut(&id) else {
            return false;
        };
        let Some(data) = block.data.clone() else {
            return false;
        };
        if block.file.is_none() {
            let bytes = (block.encode)(&data);
            if let Err(e) = std::fs::write(&file, &bytes) {
                inner
                    .poison
                    .get_or_insert_with(|| DataflowError::spill("write spill file", &file, &e));
                return false;
            }
            self.metrics.add_disk_write(bytes.len() as u64);
            inner.spilled_bytes += bytes.len() as u64;
            block.file = Some(file);
        }
        block.data = None;
        inner.resident_bytes -= block.size;
        inner.evictions += 1;
        self.sample_locked(inner);
        true
    }

    /// Insert a partition, keeping it resident (subject to the budget).
    pub fn put<T: Encode + Send + Sync + 'static>(&self, data: Vec<T>) -> BlockId {
        let size = partition_size(&data);
        let id = self.alloc_id();
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.blocks.insert(
            id,
            Block {
                data: Some(Arc::new(data) as AnyArc),
                size,
                last_access: clock,
                file: None,
                encode: encode_any::<T>,
            },
        );
        inner.resident_bytes += size;
        self.sample_locked(&mut inner);
        self.enforce_budget(&mut inner, id);
        // If this block alone exceeds the budget, it must itself be spilled.
        if self.budget.is_some_and(|b| inner.resident_bytes > b) {
            self.evict_locked(&mut inner, id);
        }
        id
    }

    /// Insert a partition directly on disk without occupying memory
    /// (used by the Hive-like `DiskMr` mode for stage outputs).
    ///
    /// When the disk write fails the store is poisoned and the partition
    /// falls back to memory so no data is lost before the driver notices.
    pub fn put_disk<T: Encode + Send + Sync + Clone + 'static>(&self, data: &[T]) -> BlockId {
        let id = self.alloc_id();
        let bytes = encode_records(data);
        let file = self.file_for(id);
        let size = partition_size(data);
        let written = std::fs::write(&file, &bytes);
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match written {
            Ok(()) => {
                self.metrics.add_disk_write(bytes.len() as u64);
                inner.spilled_bytes += bytes.len() as u64;
                inner.blocks.insert(
                    id,
                    Block {
                        data: None,
                        size,
                        last_access: clock,
                        file: Some(file),
                        encode: encode_any::<T>,
                    },
                );
            }
            Err(e) => {
                inner
                    .poison
                    .get_or_insert_with(|| DataflowError::spill("write block file", &file, &e));
                inner.blocks.insert(
                    id,
                    Block {
                        data: Some(Arc::new(data.to_vec()) as AnyArc),
                        size,
                        last_access: clock,
                        file: None,
                        encode: encode_any::<T>,
                    },
                );
                inner.resident_bytes += size;
                self.sample_locked(&mut inner);
            }
        }
        id
    }

    /// Fetch a partition. Spilled blocks are read back from disk, decoded and
    /// re-admitted to memory (possibly evicting others) — the "continuous
    /// re-read" behaviour Figure 4.3 shows for undersized budgets.
    pub fn get<T: Encode + Send + Sync + 'static>(&self, id: BlockId) -> Arc<Vec<T>> {
        let file = {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            let Some(block) = inner.blocks.get_mut(&id) else {
                // Reading a freed block is a driver logic error; poison and
                // return an empty partition so the run aborts at the next
                // health check instead of crashing a worker thread.
                inner.poison.get_or_insert(DataflowError::Spill {
                    op: "read block",
                    path: format!("block-{id:?}"),
                    detail: "block was freed".into(),
                });
                return Arc::new(Vec::new());
            };
            block.last_access = clock;
            if let Some(data) = &block.data {
                match Arc::clone(data).downcast::<Vec<T>>() {
                    Ok(v) => return v,
                    Err(_) => unreachable!("block type matches request"),
                }
            }
            match block.file.clone() {
                Some(file) => file,
                None => unreachable!("non-resident block has a file"),
            }
        };
        // Read and decode outside the lock; file I/O can be slow.
        let bytes = match std::fs::read(&file) {
            Ok(bytes) => bytes,
            Err(e) => {
                let mut inner = self.inner.lock();
                inner
                    .poison
                    .get_or_insert_with(|| DataflowError::spill("read spill file", &file, &e));
                return Arc::new(Vec::new());
            }
        };
        self.metrics.add_disk_read(bytes.len() as u64);
        let decoded: Arc<Vec<T>> = Arc::new(decode_records(&bytes));
        let mut inner = self.inner.lock();
        if let Some(block) = inner.blocks.get_mut(&id) {
            if block.data.is_none() {
                block.data = Some(Arc::clone(&decoded) as AnyArc);
                let size = block.size;
                inner.resident_bytes += size;
                self.sample_locked(&mut inner);
                self.enforce_budget(&mut inner, id);
            }
        }
        decoded
    }

    /// Drop a block and its spill file.
    pub fn free(&self, id: BlockId) {
        let mut inner = self.inner.lock();
        if let Some(block) = inner.blocks.remove(&id) {
            if block.data.is_some() {
                inner.resident_bytes -= block.size;
                self.sample_locked(&mut inner);
            }
            if let Some(file) = block.file {
                // lint:allow(SL008) — freeing a block must not fail; a stranded spill file is reclaimed by cleanup()
                let _ = std::fs::remove_file(file);
            }
        }
    }

    /// Bytes of block data currently resident in memory.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().resident_bytes
    }

    /// Memory-pressure counters: the resident set plus cumulative spill
    /// volume and eviction count.
    pub fn memory_stats(&self) -> MemoryStats {
        let inner = self.inner.lock();
        MemoryStats {
            resident_bytes: inner.resident_bytes,
            spilled_bytes: inner.spilled_bytes,
            evictions: inner.evictions,
        }
    }

    /// The memory-usage-over-time trace accumulated so far.
    pub fn trace(&self) -> Vec<MemSample> {
        self.inner.lock().trace.clone()
    }

    /// Clear the trace (e.g. between experiments sharing one engine).
    pub fn reset_trace(&self) {
        self.inner.lock().trace.clear();
    }

    /// Take the first spill-I/O failure recorded since the last check, if
    /// any, clearing it. Drivers call this between stages ([`health`] on
    /// [`crate::Engine`]) to turn deferred I/O failures into typed errors.
    ///
    /// [`health`]: crate::Engine::health
    pub fn take_poison(&self) -> Option<DataflowError> {
        self.inner.lock().poison.take()
    }

    /// True if a spill-I/O failure is pending.
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poison.is_some()
    }

    /// Best-effort removal of all spill files.
    pub fn cleanup(&self) {
        // lint:allow(SL008) — documented best-effort teardown; the spill dir lives under a temp root the OS reclaims
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Approximate in-memory footprint of a partition.
fn partition_size<T: Encode>(data: &[T]) -> usize {
    // Sample up to 64 records to keep sizing O(1)-ish for huge partitions.
    if data.is_empty() {
        return 64;
    }
    let step = (data.len() / 64).max(1);
    let mut sampled = 0usize;
    let mut count = 0usize;
    let mut i = 0;
    while i < data.len() {
        sampled += data[i].size_estimate();
        count += 1;
        i += step;
    }
    64 + sampled * data.len() / count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(budget: Option<usize>) -> BlockStore {
        BlockStore::new(
            budget,
            std::env::temp_dir().join("sirum-dataflow-test"),
            MetricsRegistry::new(),
        )
    }

    #[test]
    fn put_get_round_trip() {
        let s = store(None);
        let id = s.put(vec![1u32, 2, 3]);
        assert_eq!(*s.get::<u32>(id), vec![1, 2, 3]);
        s.cleanup();
    }

    #[test]
    fn unbounded_budget_never_spills() {
        let s = store(None);
        for i in 0..10 {
            let id = s.put(vec![i as u64; 1000]);
            let _ = s.get::<u64>(id);
        }
        assert_eq!(s.metrics.counters().disk_writes, 0);
        s.cleanup();
    }

    #[test]
    fn tight_budget_spills_and_reloads() {
        let s = store(Some(10_000));
        let ids: Vec<BlockId> = (0..8).map(|i| s.put(vec![i as u64; 1000])).collect();
        // 8 blocks × ~8KB each with a 10KB budget: most must have spilled.
        assert!(s.resident_bytes() <= 10_000 + 9000);
        assert!(s.metrics.counters().disk_writes > 0);
        // Every block still yields the right contents.
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(*s.get::<u64>(*id), vec![i as u64; 1000]);
        }
        assert!(s.metrics.counters().disk_reads > 0);
        s.cleanup();
    }

    #[test]
    fn disk_only_blocks_occupy_no_memory_until_read() {
        let s = store(None);
        let id = s.put_disk(&vec![7u32; 100]);
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(*s.get::<u32>(id), vec![7u32; 100]);
        assert!(s.resident_bytes() > 0, "read re-admits to memory");
        s.cleanup();
    }

    #[test]
    fn free_releases_memory() {
        let s = store(None);
        let id = s.put(vec![1u64; 100]);
        assert!(s.resident_bytes() > 0);
        s.free(id);
        assert_eq!(s.resident_bytes(), 0);
        s.cleanup();
    }

    #[test]
    fn trace_records_growth() {
        let s = store(None);
        s.put(vec![1u64; 10]);
        s.put(vec![2u64; 10]);
        let trace = s.trace();
        assert_eq!(trace.len(), 2);
        assert!(trace[1].resident_bytes > trace[0].resident_bytes);
        s.cleanup();
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let s = store(Some(20_000));
        let a = s.put(vec![0u64; 1000]); // ~8KB
        let b = s.put(vec![1u64; 1000]);
        let _ = s.get::<u64>(a); // touch a so b becomes LRU
        let _c = s.put(vec![2u64; 1000]); // forces one eviction
                                          // b should have been the victim; a remains resident (no disk read).
        let before = s.metrics.counters().disk_reads;
        let _ = s.get::<u64>(a);
        assert_eq!(s.metrics.counters().disk_reads, before);
        let _ = s.get::<u64>(b);
        assert_eq!(s.metrics.counters().disk_reads, before + 1);
        s.cleanup();
    }

    #[test]
    fn unwritable_spill_dir_poisons_but_preserves_data() {
        // Use a regular file as the spill parent so create_dir_all fails.
        let blocker = std::env::temp_dir().join(format!("sirum-poison-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let s = BlockStore::new(Some(100), blocker.clone(), MetricsRegistry::new());
        assert!(s.is_poisoned(), "failed dir creation must poison the store");
        assert!(matches!(
            s.take_poison(),
            Some(DataflowError::Spill {
                op: "create spill directory",
                ..
            })
        ));
        // Evictions now fail (no spill dir), so blocks stay resident and
        // readable; the failed spill re-poisons the store.
        let id = s.put(vec![1u64; 1000]); // far over the 100-byte budget
        assert_eq!(*s.get::<u64>(id), vec![1u64; 1000]);
        assert!(matches!(
            s.take_poison(),
            Some(DataflowError::Spill {
                op: "write spill file",
                ..
            })
        ));
        assert!(!s.is_poisoned(), "take_poison clears the pending error");
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn memory_stats_count_spills_and_evictions() {
        let s = store(Some(10_000));
        assert_eq!(s.memory_stats(), MemoryStats::default());
        for i in 0..4 {
            let _ = s.put(vec![i as u64; 1000]); // ~8KB each under a 10KB budget
        }
        let stats = s.memory_stats();
        assert!(stats.evictions >= 3, "budget pressure evicts");
        assert!(stats.spilled_bytes >= 3 * 8000);
        assert_eq!(stats.resident_bytes, s.resident_bytes());
        // Re-evicting an already-spilled block counts the eviction but
        // writes no new bytes.
        let disk_only = s.memory_stats();
        let id = s.put_disk(&vec![9u64; 1000]);
        assert!(s.memory_stats().spilled_bytes > disk_only.spilled_bytes);
        assert_eq!(s.memory_stats().evictions, disk_only.evictions);
        let _ = s.get::<u64>(id);
        s.cleanup();
    }

    #[test]
    fn oversized_single_block_is_spilled() {
        let s = store(Some(100));
        let id = s.put(vec![1u64; 1000]);
        assert_eq!(s.resident_bytes(), 0, "block larger than budget spills");
        assert_eq!(*s.get::<u64>(id), vec![1u64; 1000]);
        s.cleanup();
    }
}
