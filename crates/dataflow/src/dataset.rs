//! `Dataset<T>`: a partitioned, immutable collection with Spark-like
//! coarse-grained transformations (map / filter / reduce-by-key / sample /
//! cache), executed by the [`Engine`].

use crate::encode::{decode_records, encode_records, Encode};
use crate::engine::{Engine, TaskOutput};
use crate::hash::{fx_hash_one, FxHashMap};
use crate::memory::BlockId;
use std::hash::Hash;
use std::sync::Arc;

/// Bound alias for element types that can flow through the engine: they must
/// be encodable (shuffles, spill), cloneable and thread-safe.
pub trait Record: Encode + Clone + Send + Sync + 'static {}
impl<T: Encode + Clone + Send + Sync + 'static> Record for T {}

/// The selection protocol behind [`Dataset::take_sample`]: the sorted
/// global row indices of a uniform without-replacement draw of
/// `min(n, total)` rows, deterministic in `seed` (all rows when
/// `n >= total`). Public — and the single implementation — so datasets
/// with a different record granularity (e.g. one columnar block per
/// partition) can draw the *same* rows a record-per-row dataset would:
/// the miner's columnar/row-major bit-identity depends on both arms
/// replaying this one protocol.
pub fn sample_row_indices(total: usize, n: usize, seed: u64) -> Vec<usize> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    if n >= total {
        return (0..total).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen: Vec<usize> = rand::seq::index::sample(&mut rng, total, n).into_vec();
    chosen.sort_unstable();
    chosen
}

/// One partition of a dataset: either resident in memory or a handle into
/// the block store (cached or disk-materialized).
pub(crate) enum Part<T> {
    Mem(Arc<Vec<T>>),
    Stored(BlockId),
}

impl<T> Clone for Part<T> {
    fn clone(&self) -> Self {
        match self {
            Part::Mem(a) => Part::Mem(Arc::clone(a)),
            Part::Stored(id) => Part::Stored(*id),
        }
    }
}

/// A partitioned immutable collection bound to an [`Engine`].
pub struct Dataset<T> {
    engine: Engine,
    parts: Vec<Part<T>>,
}

impl<T> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Dataset {
            engine: self.engine.clone(),
            parts: self.parts.clone(),
        }
    }
}

impl<T: Send + Sync + 'static> Dataset<T> {
    pub(crate) fn from_parts(engine: Engine, parts: Vec<Part<T>>) -> Self {
        Dataset { engine, parts }
    }

    /// The engine this dataset is bound to.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Build a dataset with **one record per partition** — the columnar
    /// construction, where each record is itself a whole partition's worth
    /// of rows (a [`sirum_table::FrameView`] range or a column block) and
    /// placing it is an `Arc` bump, not a copy. Contrast
    /// [`Engine::parallelize`], which chunks a flat record list.
    pub fn from_partitioned(engine: &Engine, items: Vec<T>) -> Dataset<T> {
        let parts = items
            .into_iter()
            .map(|item| Part::Mem(Arc::new(vec![item])))
            .collect();
        Dataset::from_parts(engine.clone(), parts)
    }
}

impl Dataset<sirum_table::FrameView> {
    /// Partition a columnar [`sirum_table::Frame`] into `partitions` range
    /// views over its shared columns — one view per partition, zero
    /// copying, using the same row chunking as [`Engine::parallelize`] so
    /// a columnar dataset sees every row in the same partition slot as the
    /// row-major dataset it replaces.
    pub fn from_frame_views(
        engine: &Engine,
        frame: &sirum_table::Frame,
        partitions: usize,
    ) -> Dataset<sirum_table::FrameView> {
        Dataset::from_partitioned(engine, frame.partition_views(partitions))
    }
}

impl<T: Record> Dataset<T> {
    /// Materialize partition `i` (decoding / reading from disk if stored).
    pub fn part(&self, i: usize) -> Arc<Vec<T>> {
        match &self.parts[i] {
            Part::Mem(a) => Arc::clone(a),
            Part::Stored(id) => self.engine.store().get::<T>(*id),
        }
    }

    /// Total number of records (materializes partitions; cheap for in-memory
    /// parts, a disk read for spilled ones).
    pub fn len(&self) -> usize {
        (0..self.parts.len()).map(|i| self.part(i).len()).sum()
    }

    /// True if the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Gather all records on the driver, in partition order.
    pub fn collect(&self) -> Vec<T> {
        let mut out = Vec::new();
        for i in 0..self.parts.len() {
            out.extend_from_slice(&self.part(i));
        }
        out
    }

    /// Wrap freshly produced partition contents according to the engine mode
    /// (in-memory for Spark-like modes, disk-materialized for `DiskMr`).
    fn finish_part<U: Record>(engine: &Engine, out: Vec<U>) -> Part<U> {
        use crate::config::EngineMode;
        match engine.mode() {
            EngineMode::DiskMr => Part::Stored(engine.store().put_disk(&out)),
            _ => Part::Mem(Arc::new(out)),
        }
    }

    /// One narrow stage: apply `f` to every partition independently.
    pub fn map_partitions<U: Record, F>(&self, label: &str, f: F) -> Dataset<U>
    where
        F: Fn(usize, &[T]) -> Vec<U> + Send + Sync,
    {
        let engine = self.engine.clone();
        let parts =
            self.engine
                .run_stage(label, self.parts.clone(), (0, 0), |idx, part: Part<T>| {
                    let data = match &part {
                        Part::Mem(a) => Arc::clone(a),
                        Part::Stored(id) => engine.store().get::<T>(*id),
                    };
                    let out = f(idx, &data);
                    TaskOutput {
                        records_in: data.len() as u64,
                        records_out: out.len() as u64,
                        value: Self::finish_part(&engine, out),
                    }
                });
        Dataset::from_parts(self.engine.clone(), parts)
    }

    /// Element-wise transformation.
    pub fn map<U: Record, F>(&self, label: &str, f: F) -> Dataset<U>
    where
        F: Fn(&T) -> U + Send + Sync,
    {
        self.map_partitions(label, move |_, data| data.iter().map(&f).collect())
    }

    /// Element-to-many transformation.
    pub fn flat_map<U: Record, I, F>(&self, label: &str, f: F) -> Dataset<U>
    where
        I: IntoIterator<Item = U>,
        F: Fn(&T) -> I + Send + Sync,
    {
        self.map_partitions(label, move |_, data| data.iter().flat_map(&f).collect())
    }

    /// Keep only records satisfying the predicate.
    pub fn filter<F>(&self, label: &str, f: F) -> Dataset<T>
    where
        F: Fn(&T) -> bool + Send + Sync,
    {
        self.map_partitions(label, move |_, data| {
            data.iter().filter(|t| f(t)).cloned().collect()
        })
    }

    /// Tree-aggregate all records into one accumulator.
    pub fn aggregate<A, FI, FS, FC>(&self, label: &str, init: FI, seq: FS, comb: FC) -> A
    where
        A: Send,
        FI: Fn() -> A + Send + Sync,
        FS: Fn(&mut A, &T) + Send + Sync,
        FC: Fn(&mut A, A) + Send + Sync,
    {
        let engine = self.engine.clone();
        let accs = self
            .engine
            .run_stage(label, self.parts.clone(), (0, 0), |_, part: Part<T>| {
                let data = match &part {
                    Part::Mem(a) => Arc::clone(a),
                    Part::Stored(id) => engine.store().get::<T>(*id),
                };
                let mut acc = init();
                for t in data.iter() {
                    seq(&mut acc, t);
                }
                TaskOutput {
                    records_in: data.len() as u64,
                    records_out: 1,
                    value: acc,
                }
            });
        let mut iter = accs.into_iter();
        let mut total = iter.next().unwrap_or_else(&init);
        for acc in iter {
            comb(&mut total, acc);
        }
        total
    }

    /// Partition-granular aggregation with a **deterministic,
    /// partition-ordered reduction**: `per_part` maps each whole partition
    /// to an accumulator (tasks run in parallel on the engine's thread
    /// pool), and `comb` folds the accumulators strictly in partition
    /// order on the driver.
    ///
    /// Unlike [`Self::aggregate`], the task closure sees the partition
    /// slice (and its index) at once, so it can do work that needs
    /// partition boundaries — e.g. polling a cancellation token between
    /// partitions, or building one hash accumulator per partition. Because
    /// the fold order is the partition order — never the task *completion*
    /// order — the result is bit-identical for any worker count, including
    /// non-associative float accumulation.
    pub fn aggregate_partitions<A, FI, FP, FC>(
        &self,
        label: &str,
        init: FI,
        per_part: FP,
        comb: FC,
    ) -> A
    where
        A: Send,
        FI: Fn() -> A + Send + Sync,
        FP: Fn(usize, &[T]) -> A + Send + Sync,
        FC: Fn(&mut A, A),
    {
        let engine = self.engine.clone();
        let accs =
            self.engine
                .run_stage(label, self.parts.clone(), (0, 0), |idx, part: Part<T>| {
                    let data = match &part {
                        Part::Mem(a) => Arc::clone(a),
                        Part::Stored(id) => engine.store().get::<T>(*id),
                    };
                    let acc = per_part(idx, &data);
                    TaskOutput {
                        records_in: data.len() as u64,
                        records_out: 1,
                        value: acc,
                    }
                });
        // run_stage returns outputs in partition order regardless of which
        // worker ran which task; folding that Vec front-to-back is the
        // deterministic reduction.
        let mut iter = accs.into_iter();
        let mut total = iter.next().unwrap_or_else(&init);
        for acc in iter {
            comb(&mut total, acc);
        }
        total
    }

    /// Total record count via a counting stage.
    pub fn count(&self) -> u64 {
        self.aggregate("count", || 0u64, |a, _| *a += 1, |a, b| *a += b)
    }

    /// Bernoulli sample: keep each record independently with probability
    /// `fraction`, deterministically from `seed`.
    pub fn sample(&self, fraction: f64, seed: u64) -> Dataset<T> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        self.map_partitions("sample", move |idx, data| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(idx as u64));
            data.iter()
                .filter(|_| rng.gen::<f64>() < fraction)
                .cloned()
                .collect()
        })
    }

    /// Draw exactly `min(n, len)` records uniformly at random without
    /// replacement, deterministically from `seed` (the
    /// [`sample_row_indices`] protocol).
    pub fn take_sample(&self, n: usize, seed: u64) -> Vec<T> {
        let lens: Vec<usize> = (0..self.parts.len()).map(|i| self.part(i).len()).collect();
        let total: usize = lens.iter().sum();
        if n >= total {
            return self.collect();
        }
        let chosen = sample_row_indices(total, n, seed);
        let mut out = Vec::with_capacity(n);
        let mut offset = 0usize;
        let mut cursor = 0usize;
        for (i, &len) in lens.iter().enumerate() {
            if cursor >= chosen.len() {
                break;
            }
            let data = self.part(i);
            while cursor < chosen.len() && chosen[cursor] < offset + len {
                out.push(data[chosen[cursor] - offset].clone());
                cursor += 1;
            }
            offset += len;
        }
        out
    }

    /// Persist every partition in the block store (subject to the memory
    /// budget; over-budget blocks spill to disk, as in Spark's `cache()`).
    pub fn cache(&self) -> Dataset<T> {
        let engine = self.engine.clone();
        let parts =
            self.engine
                .run_stage("cache", self.parts.clone(), (0, 0), |_, part: Part<T>| {
                    let data = match &part {
                        Part::Mem(a) => Arc::clone(a),
                        Part::Stored(id) => engine.store().get::<T>(*id),
                    };
                    let n = data.len() as u64;
                    let owned = Arc::try_unwrap(data).unwrap_or_else(|a| a.as_ref().clone());
                    TaskOutput {
                        records_in: n,
                        records_out: n,
                        value: Part::Stored(engine.store().put(owned)),
                    }
                });
        Dataset::from_parts(self.engine.clone(), parts)
    }

    /// Redistribute records across `partitions` partitions through a full
    /// shuffle (every record is serialized, moved and deserialized — the
    /// cost a repartition/cartesian join pays in Spark, which the broadcast
    /// join of BJ SIRUM avoids).
    pub fn repartition(&self, partitions: usize) -> Dataset<T> {
        let partitions = partitions.max(1);
        let engine = self.engine.clone();
        let buckets: Vec<Vec<Vec<u8>>> = self.engine.run_stage(
            "repartition.map",
            self.parts.clone(),
            (0, 0),
            |_, part: Part<T>| {
                let data = match &part {
                    Part::Mem(a) => Arc::clone(a),
                    Part::Stored(id) => engine.store().get::<T>(*id),
                };
                let mut split: Vec<Vec<&T>> = (0..partitions).map(|_| Vec::new()).collect();
                for (i, t) in data.iter().enumerate() {
                    split[i % partitions].push(t);
                }
                let encoded: Vec<Vec<u8>> = split
                    .iter()
                    .map(|bucket| {
                        let mut out = Vec::new();
                        (bucket.len() as u64).encode(&mut out);
                        for t in bucket {
                            t.encode(&mut out);
                        }
                        out
                    })
                    .collect();
                TaskOutput {
                    records_in: data.len() as u64,
                    records_out: data.len() as u64,
                    value: encoded,
                }
            },
        );
        let mut shuffled_bytes = 0u64;
        let mut receiver_inputs: Vec<Vec<Vec<u8>>> = (0..partitions).map(|_| Vec::new()).collect();
        for task_buckets in buckets {
            for (j, bucket) in task_buckets.into_iter().enumerate() {
                shuffled_bytes += bucket.len() as u64;
                receiver_inputs[j].push(bucket);
            }
        }
        let parts = self.engine.run_stage(
            "repartition.reduce",
            receiver_inputs,
            (0, 0),
            |_, incoming: Vec<Vec<u8>>| {
                let mut out = Vec::new();
                for bucket in incoming {
                    out.extend(decode_records::<T>(&bucket));
                }
                let n = out.len() as u64;
                TaskOutput {
                    records_in: n,
                    records_out: n,
                    value: Self::finish_part(&engine, out),
                }
            },
        );
        let total: u64 = self
            .engine
            .metrics()
            .stages()
            .last()
            .map(|s| s.tasks.iter().map(|t| t.records_in).sum())
            .unwrap_or(0);
        self.engine
            .metrics()
            .set_last_stage_shuffle(total, shuffled_bytes);
        Dataset::from_parts(self.engine.clone(), parts)
    }

    /// Release any block-store blocks held by this dataset.
    pub fn free(self) {
        for part in &self.parts {
            if let Part::Stored(id) = part {
                self.engine.store().free(*id);
            }
        }
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Record + Eq + Hash + Ord,
    V: Record,
{
    /// Hash-shuffle aggregation with map-side combine (the workhorse of the
    /// paper's data-cube rule generation). `merge` folds a new value into an
    /// existing one for the same key.
    ///
    /// In `DiskMr` mode every map-side bucket is serialized and round-trips
    /// through disk, as MapReduce map outputs do. The in-memory modes move
    /// the combined records directly (Spark-with-broadcast keeps shuffles
    /// narrow; charging a full serialize/deserialize per in-process record
    /// would only rescale every variant equally) while still recording the
    /// shuffled record and estimated byte volume.
    pub fn reduce_by_key<F>(&self, label: &str, partitions: usize, merge: F) -> Dataset<(K, V)>
    where
        F: Fn(&mut V, V) + Send + Sync,
    {
        let partitions = partitions.max(1);
        let engine = self.engine.clone();
        let merge = &merge;
        let disk_mr = matches!(engine.mode(), crate::config::EngineMode::DiskMr);

        // Map side: combine within each partition, then split by key hash
        // into one bucket per reducer.
        let map_label = format!("{label}.combine");
        let buckets: Vec<Vec<Vec<(K, V)>>> = self.engine.run_stage(
            &map_label,
            self.parts.clone(),
            (0, 0),
            |_, part: Part<(K, V)>| {
                let data = match &part {
                    Part::Mem(a) => Arc::clone(a),
                    Part::Stored(id) => engine.store().get::<(K, V)>(*id),
                };
                let mut combined: FxHashMap<K, V> = FxHashMap::default();
                for (k, v) in data.iter() {
                    match combined.get_mut(k) {
                        Some(acc) => merge(acc, v.clone()),
                        None => {
                            combined.insert(k.clone(), v.clone());
                        }
                    }
                }
                let records_out = combined.len() as u64;
                // Drain the combine map through a key sort so bucket
                // contents (and thus shuffle layout and disk spill
                // bytes) never depend on hash-iteration order.
                let mut drained: Vec<(K, V)> = combined.into_iter().collect();
                drained.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                let mut split: Vec<Vec<(K, V)>> = (0..partitions).map(|_| Vec::new()).collect();
                for (k, v) in drained {
                    let p = (fx_hash_one(&k) % partitions as u64) as usize;
                    split[p].push((k, v));
                }
                TaskOutput {
                    records_in: data.len() as u64,
                    records_out,
                    value: split,
                }
            },
        );

        // Shuffle accounting: every combined record crosses the wire once;
        // bytes are estimated from a sampled record size.
        let mut shuffled_records = 0u64;
        let mut shuffled_bytes = 0u64;
        let mut reducer_inputs: Vec<Vec<Vec<(K, V)>>> =
            (0..partitions).map(|_| Vec::new()).collect();
        for task_buckets in buckets {
            for (j, bucket) in task_buckets.into_iter().enumerate() {
                shuffled_records += bucket.len() as u64;
                if let Some((k, v)) = bucket.first() {
                    shuffled_bytes +=
                        (k.size_estimate() + v.size_estimate()) as u64 * bucket.len() as u64;
                }
                let bucket = if disk_mr {
                    // Real serialization + disk round trip per map output.
                    let encoded = encode_records(&bucket);
                    let id = engine.store().put_disk(&encoded);
                    let data = engine.store().get::<u8>(id);
                    engine.store().free(id);
                    decode_records::<(K, V)>(&data)
                } else {
                    bucket
                };
                reducer_inputs[j].push(bucket);
            }
        }

        // Reduce side: merge all buckets for this reducer.
        let reduce_label = format!("{label}.reduce");
        let parts = self.engine.run_stage(
            &reduce_label,
            reducer_inputs,
            (0, 0),
            |_, incoming: Vec<Vec<(K, V)>>| {
                let mut merged: FxHashMap<K, V> = FxHashMap::default();
                let mut records_in = 0u64;
                for bucket in incoming {
                    for (k, v) in bucket {
                        records_in += 1;
                        match merged.get_mut(&k) {
                            Some(acc) => merge(acc, v),
                            None => {
                                merged.insert(k, v);
                            }
                        }
                    }
                }
                // Key-sorted output: reducer partitions have a stable
                // record order regardless of merge arrival order.
                let mut out: Vec<(K, V)> = merged.into_iter().collect();
                out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                TaskOutput {
                    records_in,
                    records_out: out.len() as u64,
                    value: Self::finish_part(&engine, out),
                }
            },
        );

        // Attach shuffle volume to the reduce stage record.
        self.engine
            .metrics()
            .set_last_stage_shuffle(shuffled_records, shuffled_bytes);

        Dataset::from_parts(self.engine.clone(), parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;

    fn engine() -> Engine {
        Engine::new(EngineConfig::in_memory().with_workers(2))
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let e = engine();
        let d = e.parallelize((0..100u32).collect(), 7);
        let out = d
            .map("x2", |&x| x * 2)
            .filter("even-hundreds", |&x| x % 10 == 0)
            .flat_map("dup", |&x| vec![x, x])
            .collect();
        assert_eq!(out.len(), 40);
        assert!(out.iter().all(|&x| x % 10 == 0));
    }

    #[test]
    fn aggregate_partitions_folds_in_partition_order() {
        // The fold must visit partitions 0, 1, 2, … regardless of worker
        // count; tags record the order the combiner saw them in.
        for workers in [1, 2, 4] {
            let e = Engine::new(EngineConfig::in_memory().with_workers(workers));
            let d = e.parallelize((0..40u32).collect(), 5);
            let order = d.aggregate_partitions(
                "order",
                Vec::new,
                |idx, data: &[u32]| vec![(idx, data.len())],
                |a, b| a.extend(b),
            );
            assert_eq!(
                order,
                vec![(0, 8), (1, 8), (2, 8), (3, 8), (4, 8)],
                "workers={workers}"
            );
        }
    }

    #[test]
    fn aggregate_partitions_is_bit_identical_across_worker_counts() {
        // Non-associative float accumulation: same partitioning must yield
        // the same bits for 1 and many workers.
        let data: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 0.37)).collect();
        let run = |workers: usize| -> u64 {
            let e = Engine::new(EngineConfig::in_memory().with_workers(workers));
            let d = e.parallelize(data.clone(), 7);
            d.aggregate_partitions(
                "sum",
                || 0.0f64,
                |_, part: &[f64]| part.iter().sum::<f64>(),
                |a, b| *a += b,
            )
            .to_bits()
        };
        let seq = run(1);
        assert_eq!(run(2), seq);
        assert_eq!(run(4), seq);
    }

    #[test]
    fn aggregate_sums() {
        let e = engine();
        let d = e.parallelize((1..=100u64).collect(), 9);
        let sum = d.aggregate("sum", || 0u64, |a, &x| *a += x, |a, b| *a += b);
        assert_eq!(sum, 5050);
        assert_eq!(d.count(), 100);
    }

    #[test]
    fn reduce_by_key_matches_sequential() {
        let e = engine();
        let pairs: Vec<(u32, u64)> = (0..1000).map(|i| (i % 13, 1u64)).collect();
        let d = e.parallelize(pairs, 8);
        let mut out = d.reduce_by_key("count", 4, |a, b| *a += b).collect();
        out.sort_unstable();
        let expect: Vec<(u32, u64)> = (0..13)
            .map(|k| (k, (0..1000).filter(|i| i % 13 == k).count() as u64))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn reduce_by_key_output_order_is_input_order_independent() {
        // Regression (SL007): map-side combine and reduce-side merge both
        // went through hash maps, so the *order* of the collected output
        // tracked hash-iteration order of the input. Both sides now drain
        // through a key sort; the exact output sequence (no re-sorting
        // here) must survive any input permutation.
        let run = |pairs: Vec<(u32, u64)>| -> Vec<(u32, u64)> {
            let e = engine();
            e.parallelize(pairs, 1)
                .reduce_by_key("count", 3, |a, b| *a += b)
                .collect()
        };
        let forward: Vec<(u32, u64)> = (0..400).map(|i| (i % 17, u64::from(i))).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        assert_eq!(run(forward), run(reversed));
    }

    #[test]
    fn reduce_by_key_records_shuffle_metrics() {
        let e = engine();
        let pairs: Vec<(u32, u64)> = (0..100).map(|i| (i % 5, 1u64)).collect();
        let d = e.parallelize(pairs, 4);
        let _ = d.reduce_by_key("count", 3, |a, b| *a += b);
        let stages = e.metrics().stages();
        let reduce = stages.iter().find(|s| s.label == "count.reduce").unwrap();
        // 4 map partitions × up to 5 keys each, combined map-side.
        assert!(reduce.shuffled_records >= 5);
        assert!(reduce.shuffled_records <= 20);
        assert!(reduce.shuffled_bytes > 0);
    }

    #[test]
    fn sample_is_deterministic_and_roughly_sized() {
        let e = engine();
        let d = e.parallelize((0..10_000u32).collect(), 8);
        let s1 = d.sample(0.1, 42).collect();
        let s2 = d.sample(0.1, 42).collect();
        assert_eq!(s1, s2);
        assert!(s1.len() > 700 && s1.len() < 1300, "got {}", s1.len());
    }

    #[test]
    fn take_sample_exact_size_without_replacement() {
        let e = engine();
        let d = e.parallelize((0..1000u32).collect(), 7);
        let s = d.take_sample(64, 7);
        assert_eq!(s.len(), 64);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 64, "sample must be without replacement");
        // Deterministic
        assert_eq!(d.take_sample(64, 7), s);
        // Oversized request returns everything.
        assert_eq!(d.take_sample(5000, 7).len(), 1000);
    }

    #[test]
    fn cache_round_trips_through_block_store() {
        let e = engine();
        let d = e.parallelize((0..500u32).collect(), 4).cache();
        assert_eq!(d.collect(), (0..500).collect::<Vec<u32>>());
        assert!(e.store().resident_bytes() > 0);
        d.free();
        assert_eq!(e.store().resident_bytes(), 0);
    }

    #[test]
    fn disk_mr_mode_materializes_stages_on_disk() {
        let e = Engine::new(EngineConfig::disk_mr().with_stage_startup(std::time::Duration::ZERO));
        let d = e.parallelize((0..100u32).collect(), 4);
        let out = d.map("inc", |&x| x + 1);
        assert!(e.metrics().counters().disk_writes >= 4);
        let before_reads = e.metrics().counters().disk_reads;
        assert_eq!(out.collect(), (1..=100).collect::<Vec<u32>>());
        assert!(e.metrics().counters().disk_reads > before_reads);
    }

    #[test]
    fn disk_mr_reduce_matches_in_memory() {
        let pairs: Vec<(u32, u64)> = (0..200).map(|i| (i % 7, u64::from(i))).collect();
        let run = |e: Engine| {
            let mut out = e
                .parallelize(pairs.clone(), 5)
                .reduce_by_key("sum", 3, |a, b| *a += b)
                .collect();
            out.sort_unstable();
            out
        };
        let mem = run(engine());
        let disk = run(Engine::new(
            EngineConfig::disk_mr().with_stage_startup(std::time::Duration::ZERO),
        ));
        assert_eq!(mem, disk);
    }

    #[test]
    fn single_thread_mode_gives_same_results() {
        let pairs: Vec<(u32, u64)> = (0..300).map(|i| (i % 11, 1u64)).collect();
        let mut a = Engine::single_thread()
            .parallelize(pairs.clone(), 6)
            .reduce_by_key("c", 2, |x, y| *x += y)
            .collect();
        let mut b = engine()
            .parallelize(pairs, 6)
            .reduce_by_key("c", 2, |x, y| *x += y)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn map_partitions_sees_partition_index() {
        let e = engine();
        let d = e.parallelize(vec![0u32; 12], 3);
        let idxs = d.map_partitions("tag", |idx, data| vec![idx as u32; data.len()]);
        let mut seen = idxs.collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn stage_metrics_count_records() {
        let e = engine();
        let d = e.parallelize((0..50u32).collect(), 5);
        let _ = d.flat_map("triple", |&x| [x, x, x]);
        let stage = e.metrics().stages().pop().unwrap();
        assert_eq!(stage.tasks.iter().map(|t| t.records_in).sum::<u64>(), 50);
        assert_eq!(stage.tasks.iter().map(|t| t.records_out).sum::<u64>(), 150);
    }
}

#[cfg(test)]
mod repartition_tests {
    use super::*;
    use crate::config::EngineConfig;

    #[test]
    fn repartition_preserves_multiset() {
        let e = Engine::new(EngineConfig::in_memory().with_workers(2));
        let d = e.parallelize((0..100u32).collect(), 3);
        let r = d.repartition(7);
        assert_eq!(r.num_partitions(), 7);
        let mut out = r.collect();
        out.sort_unstable();
        assert_eq!(out, (0..100).collect::<Vec<u32>>());
        // Every record crossed the shuffle.
        let stage = e
            .metrics()
            .stages()
            .into_iter()
            .find(|s| s.label == "repartition.reduce")
            .unwrap();
        assert_eq!(stage.shuffled_records, 100);
        assert!(stage.shuffled_bytes >= 400);
    }
}
