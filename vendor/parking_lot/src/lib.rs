//! Offline stand-in for the subset of `parking_lot` the SIRUM workspace
//! uses: [`Mutex`] and [`RwLock`] with non-poisoning, `Result`-free guards.
//!
//! Backed by `std::sync` primitives; a poisoned lock is recovered rather
//! than propagated, which matches parking_lot's "no poisoning" contract
//! closely enough for this workspace (a panicking worker already aborts the
//! surrounding stage).
//!
//! ```
//! let m = parking_lot::Mutex::new(1);
//! *m.lock() += 1;
//! assert_eq!(m.into_inner(), 2);
//! ```

#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` returns the guard directly (no
/// poisoning `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrow the inner value (no locking needed with `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
