//! Offline stand-in for the subset of `proptest` the SIRUM workspace uses:
//! the [`proptest!`] macro, `prop_assert*` macros, [`strategy::Strategy`]
//! with `prop_map`/`prop_flat_map`, ranges and tuples as strategies,
//! [`collection::vec`], [`arbitrary::any`], [`strategy::Just`],
//! [`prop_oneof!`], and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: inputs are generated from a per-test
//! deterministic seed and failures are reported by panicking on the first
//! failing case **without shrinking**. The failing inputs are printed via
//! the panic message (all `prop_assert*` macros include the formatted
//! values), which has proven enough to debug this workspace's suites.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![warn(missing_docs)]

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving generation.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Per-test configuration (only `cases` is honored by this stand-in).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG used to generate test inputs. Seeded from the test
    /// name (and `PROPTEST_SEED` if set) so failures reproduce across runs.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Build the RNG for the named test.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h = DefaultHasher::new();
            test_name.hash(&mut h);
            if let Ok(extra) = std::env::var("PROPTEST_SEED") {
                extra.hash(&mut h);
            }
            TestRng(StdRng::seed_from_u64(h.finish()))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// A uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform draw from `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no shrinking: `generate` directly
    /// produces a value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Use each generated value to build a follow-up strategy, then
        /// sample that (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies with one value type
    /// (backs the [`prop_oneof!`](crate::prop_oneof) macro).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and the [`Arbitrary`] trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mix finite "reasonable" values with raw-bit patterns (which
            // include NaN and infinities) like upstream's full f64 domain.
            if rng.next_u64() & 3 == 0 {
                f64::from_bits(rng.next_u64())
            } else {
                (rng.unit_f64() - 0.5) * 2e6
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        )*};
    }

    impl_arbitrary_tuple! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works from the prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! One-stop imports: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a property, printing the formatted context on
/// failure. Panics immediately (no shrinking) in this stand-in.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies sharing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: Vec<$crate::strategy::BoxedStrategy<_>> =
            vec![$(Box::new($strategy)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Define property tests. Each `name(pat in strategy, ...) { body }` becomes
/// a `#[test]` running `body` against `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __pt_config: $crate::test_runner::ProptestConfig = $config;
                let mut __pt_rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __pt_case in 0..__pt_config.cases {
                    let _ = __pt_case;
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __pt_rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_threads_dependencies(
            (len, v) in (1usize..8).prop_flat_map(|n| (Just(n), prop::collection::vec(0..100u64, n)))
        ) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn oneof_picks_from_all_branches(x in prop_oneof![Just(1u32), Just(2u32), 10u32..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }

        #[test]
        fn map_applies(s in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0 && s < 10);
        }
    }
}
