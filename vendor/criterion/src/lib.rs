//! Offline stand-in for the subset of `criterion` the SIRUM workspace uses:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], `Bencher::iter`, and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical pipeline, each benchmark runs a
//! short warm-up followed by `sample_size` timed samples (one closure call
//! per sample unless the closure is so fast it needs batching) and reports
//! min / median / max wall time. Two environment variables tune runs:
//!
//! * `SIRUM_BENCH_SAMPLES` — overrides every group's sample count (used by
//!   `scripts/bench-quick.sh` for fast smoke runs).
//! * `SIRUM_BENCH_JSON` — if set, appends one JSON line per benchmark
//!   (`{"bench": ..., "median_ns": ...}`) to the given file, seeding the
//!   repo's `BENCH_*.json` perf trajectory.
//!
//! A positional CLI filter (substring match, as passed by
//! `cargo bench -- <filter>`) is honored; other flags cargo forwards, such
//! as `--bench`, are ignored.
//!
//! ```
//! use criterion::{Criterion, BenchmarkId};
//!
//! let mut c = Criterion::default();
//! let mut group = c.benchmark_group("doc");
//! group.sample_size(3);
//! group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &x| {
//!     b.iter(|| x * x);
//! });
//! group.finish();
//! ```

#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark: a function name plus an input parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just `<parameter>` (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Drives the timing loop inside a benchmark closure.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Nanoseconds per sample, recorded by `iter`.
    recorded: Vec<u64>,
}

impl Bencher {
    /// Time `f`, collecting one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run at least once, at most for the warm-up budget.
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let budget = Instant::now();
        self.recorded.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.recorded.push(start.elapsed().as_nanos() as u64);
            // Never exceed ~4x the configured measurement budget in total.
            if budget.elapsed() > self.measurement * 4 {
                break;
            }
        }
    }

    /// Time `f` with per-iteration setup, like criterion's `iter_batched`.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let budget = Instant::now();
        self.recorded.clear();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed().as_nanos() as u64);
            if budget.elapsed() > self.measurement * 4 {
                break;
            }
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the stand-in).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

fn env_samples() -> Option<usize> {
    std::env::var("SIRUM_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

fn report(group: &str, bench: &str, samples: &[u64]) {
    if samples.is_empty() {
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let median = sorted[sorted.len() / 2];
    let fmt = |ns: u64| -> String {
        if ns >= 1_000_000_000 {
            format!("{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            format!("{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            format!("{:.3} µs", ns as f64 / 1e3)
        } else {
            format!("{ns} ns")
        }
    };
    println!(
        "{group}/{bench}  time: [{} {} {}]  ({} samples)",
        fmt(min),
        fmt(median),
        fmt(max),
        sorted.len()
    );
    if let Ok(path) = std::env::var("SIRUM_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"bench\": \"{group}/{bench}\", \"median_ns\": {median}, \"min_ns\": {min}, \"max_ns\": {max}, \"samples\": {}}}",
                sorted.len()
            );
        }
    }
}

/// A named set of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Set the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id.clone(), f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if !self.criterion.matches(&self.name, id) {
            return;
        }
        let mut bencher = Bencher {
            samples: env_samples().unwrap_or(self.sample_size),
            warm_up: self.warm_up,
            measurement: self.measurement,
            recorded: Vec::new(),
        };
        f(&mut bencher);
        report(&self.name, id, &bencher.recorded);
    }

    /// Finish the group (reporting is per-benchmark; nothing left to do).
    pub fn finish(self) {}
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Parse the CLI arguments cargo forwards (`--bench`, an optional
    /// substring filter) and return the configured driver.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                // Flags cargo or users pass that take no value.
                "--bench" | "--test" | "--quick" | "--noplot" => {}
                // Flags with a value we ignore.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size"
                | "--warm-up-time" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    fn matches(&self, group: &str, id: &str) -> bool {
        match &self.filter {
            None => true,
            Some(f) => format!("{group}/{id}").contains(f.as_str()),
        }
    }

    /// Start a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: self.default_samples,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(2),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Bundle benchmark functions into a named group runner, mirroring
/// criterion's simple `criterion_group!(name, target...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn filter_matches_substring() {
        let c = Criterion {
            filter: Some("anc".into()),
            default_samples: 1,
        };
        assert!(c.matches("ancestor_generation", "single/10"));
        assert!(!c.matches("platforms", "spark"));
    }
}
