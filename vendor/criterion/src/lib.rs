//! Offline stand-in for the subset of `criterion` the SIRUM workspace uses:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], `Bencher::iter`, and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical pipeline, each benchmark runs a
//! short warm-up followed by `sample_size` timed samples (one closure call
//! per sample unless the closure is so fast it needs batching) and reports
//! min / median / max wall time. Environment variables tune runs:
//!
//! * `SIRUM_BENCH_SAMPLES` — overrides every group's sample count (used by
//!   `scripts/bench-quick.sh` for fast smoke runs).
//! * `SIRUM_BENCH_MIN_SAMPLES` — per-bench sample *floor* (default 3): the
//!   measurement-budget early exit never truncates a benchmark below this
//!   many recorded samples, so a "median" is never silently a single
//!   observation. Capped at the requested sample count.
//! * `SIRUM_BENCH_JSON` — if set, appends one JSON line per benchmark
//!   (`{"bench": ..., "median_ns": ...}`) to the given file, seeding the
//!   repo's `BENCH_*.json` perf trajectory. Benchmarks the budget cut
//!   short of their requested sample count carry `"sub_floor": true` so
//!   downstream tooling can tell a thin median from a full one.
//! * `SIRUM_BENCH_SKIP` — comma-separated substrings; any benchmark whose
//!   `group/id` contains one is skipped (how `bench-quick.sh` drops the
//!   long baseline-profile rows from smoke runs).
//!
//! A positional CLI filter (substring match, as passed by
//! `cargo bench -- <filter>`) is honored; other flags cargo forwards, such
//! as `--bench`, are ignored.
//!
//! ```
//! use criterion::{Criterion, BenchmarkId};
//!
//! let mut c = Criterion::default();
//! let mut group = c.benchmark_group("doc");
//! group.sample_size(3);
//! group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &x| {
//!     b.iter(|| x * x);
//! });
//! group.finish();
//! ```

#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark: a function name plus an input parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just `<parameter>` (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Drives the timing loop inside a benchmark closure.
pub struct Bencher {
    samples: usize,
    min_samples: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Nanoseconds per sample, recorded by `iter`.
    recorded: Vec<u64>,
}

impl Bencher {
    /// True once the measurement budget is spent *and* enough samples are
    /// recorded that stopping cannot leave a single-observation "median":
    /// the budget early exit is gated on the sample floor.
    fn over_budget(&self, budget: &Instant) -> bool {
        self.recorded.len() >= self.min_samples && budget.elapsed() > self.measurement * 4
    }

    /// Time `f`, collecting one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run at least once, at most for the warm-up budget.
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let budget = Instant::now();
        self.recorded.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.recorded.push(start.elapsed().as_nanos() as u64);
            // Never exceed ~4x the configured measurement budget in total
            // (but never report fewer than the sample floor either).
            if self.over_budget(&budget) {
                break;
            }
        }
    }

    /// Time `f` with per-iteration setup, like criterion's `iter_batched`.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let budget = Instant::now();
        self.recorded.clear();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed().as_nanos() as u64);
            if self.over_budget(&budget) {
                break;
            }
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the stand-in).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

fn env_samples() -> Option<usize> {
    std::env::var("SIRUM_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

/// Per-bench sample floor: the measurement-budget early exit never cuts a
/// benchmark below this many recorded samples. Defaults to 3 — the smallest
/// count where "median" names a middle observation rather than whatever one
/// run happened to produce.
fn env_min_samples() -> usize {
    std::env::var("SIRUM_BENCH_MIN_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// Comma-separated `SIRUM_BENCH_SKIP` substrings (empty entries dropped).
fn env_skip() -> Vec<String> {
    std::env::var("SIRUM_BENCH_SKIP")
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

fn report(group: &str, bench: &str, samples: &[u64], requested: usize) {
    if samples.is_empty() {
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let median = sorted[sorted.len() / 2];
    let fmt = |ns: u64| -> String {
        if ns >= 1_000_000_000 {
            format!("{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            format!("{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            format!("{:.3} µs", ns as f64 / 1e3)
        } else {
            format!("{ns} ns")
        }
    };
    // The budget early exit stopped this benchmark short of its requested
    // sample count: say so, in text and in the JSON line, so a thin median
    // is never mistaken for a full one downstream.
    let sub_floor = sorted.len() < requested;
    println!(
        "{group}/{bench}  time: [{} {} {}]  ({} samples{})",
        fmt(min),
        fmt(median),
        fmt(max),
        sorted.len(),
        if sub_floor {
            format!(", budget-truncated from {requested}")
        } else {
            String::new()
        }
    );
    if let Ok(path) = std::env::var("SIRUM_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"bench\": \"{group}/{bench}\", \"median_ns\": {median}, \"min_ns\": {min}, \"max_ns\": {max}, \"samples\": {}{}}}",
                sorted.len(),
                if sub_floor { ", \"sub_floor\": true" } else { "" }
            );
        }
    }
}

/// A named set of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Set the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id.clone(), f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if !self.criterion.matches(&self.name, id) {
            return;
        }
        let samples = env_samples().unwrap_or(self.sample_size);
        let mut bencher = Bencher {
            samples,
            min_samples: env_min_samples().min(samples),
            warm_up: self.warm_up,
            measurement: self.measurement,
            recorded: Vec::new(),
        };
        f(&mut bencher);
        report(&self.name, id, &bencher.recorded, samples);
    }

    /// Finish the group (reporting is per-benchmark; nothing left to do).
    pub fn finish(self) {}
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    skip: Vec<String>,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            skip: env_skip(),
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Parse the CLI arguments cargo forwards (`--bench`, an optional
    /// substring filter) and return the configured driver.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                // Flags cargo or users pass that take no value.
                "--bench" | "--test" | "--quick" | "--noplot" => {}
                // Flags with a value we ignore.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size"
                | "--warm-up-time" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    fn matches(&self, group: &str, id: &str) -> bool {
        let full = format!("{group}/{id}");
        if self.skip.iter().any(|s| full.contains(s.as_str())) {
            return false;
        }
        match &self.filter {
            None => true,
            Some(f) => full.contains(f.as_str()),
        }
    }

    /// Start a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: self.default_samples,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(2),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Bundle benchmark functions into a named group runner, mirroring
/// criterion's simple `criterion_group!(name, target...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn filter_matches_substring() {
        let c = Criterion {
            filter: Some("anc".into()),
            skip: Vec::new(),
            default_samples: 1,
        };
        assert!(c.matches("ancestor_generation", "single/10"));
        assert!(!c.matches("platforms", "spark"));
    }

    #[test]
    fn skip_list_drops_matching_benches() {
        let c = Criterion {
            filter: None,
            skip: vec!["baseline_profile".into(), "staged".into()],
            default_samples: 1,
        };
        assert!(!c.matches("baseline_profile", "sarawagi/income"));
        assert!(!c.matches("gain_sweep", "mine/staged-sequential"));
        assert!(c.matches("gain_sweep", "sweep-pass/1threads"));
        // Skip wins even when the positional filter also matches.
        let both = Criterion {
            filter: Some("gain_sweep".into()),
            skip: vec!["staged".into()],
            default_samples: 1,
        };
        assert!(!both.matches("gain_sweep", "mine/staged-sequential"));
        assert!(both.matches("gain_sweep", "mine/sweep/1threads"));
    }

    #[test]
    fn budget_exit_respects_the_sample_floor() {
        // A benchmark whose single iteration blows the entire 4x budget
        // must still record the floor's worth of samples — one sample
        // masquerading as a median is the bug this floor fixes.
        let mut b = Bencher {
            samples: 10,
            min_samples: 3,
            warm_up: Duration::ZERO,
            measurement: Duration::ZERO, // any elapsed time is over budget
            recorded: Vec::new(),
        };
        b.iter(|| std::thread::sleep(Duration::from_millis(1)));
        assert_eq!(b.recorded.len(), 3, "floor holds under a spent budget");
        // With the budget honored (floor reached), truncation still works:
        // the same bencher never exceeds its floor here, i.e. it stopped
        // early rather than running all 10 samples.
        assert!(b.recorded.len() < b.samples);
    }

    #[test]
    fn full_runs_record_every_requested_sample() {
        let mut b = Bencher {
            samples: 5,
            min_samples: 3,
            warm_up: Duration::ZERO,
            measurement: Duration::from_secs(2),
            recorded: Vec::new(),
        };
        b.iter(|| black_box(2u64 + 2));
        assert_eq!(b.recorded.len(), 5);
    }
}
