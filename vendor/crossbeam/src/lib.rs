//! Offline stand-in for the subset of `crossbeam` the SIRUM workspace uses:
//! [`thread::scope`] with `Scope::spawn`, layered over `std::thread::scope`
//! (stable since Rust 1.63, which postdates crossbeam's scoped threads).
//!
//! ```
//! let total = std::sync::atomic::AtomicU64::new(0);
//! crossbeam::thread::scope(|s| {
//!     for _ in 0..4 {
//!         s.spawn(|_| total.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
//!     }
//! })
//! .unwrap();
//! assert_eq!(total.into_inner(), 4);
//! ```

#![warn(missing_docs)]

/// Scoped threads (stand-in for `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Error type carried by a failed [`scope`] call.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to the closure of [`scope`] and to each spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// itself so it can spawn further threads, mirroring crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns.
    ///
    /// Unlike crossbeam, a panicking child propagates the panic at join time
    /// instead of surfacing it in the returned `Result` — callers here
    /// `expect` the result anyway, so the observable behavior matches.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let values: Vec<u32> = (0..100).collect();
        super::thread::scope(|s| {
            for chunk in values.chunks(25) {
                s.spawn(|_| {
                    counter.fetch_add(chunk.len(), Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.into_inner(), 100);
    }

    #[test]
    fn scope_returns_closure_value() {
        let out = super::thread::scope(|_| 42).unwrap();
        assert_eq!(out, 42);
    }
}
