//! Offline stand-in for the subset of `crossbeam` the SIRUM workspace uses:
//! [`thread::scope`] with `Scope::spawn`, layered over `std::thread::scope`
//! (stable since Rust 1.63, which postdates crossbeam's scoped threads), and
//! [`channel`] with bounded multi-producer/multi-consumer queues, layered
//! over `std::sync::mpsc` with a shared receiver.
//!
//! ```
//! let total = std::sync::atomic::AtomicU64::new(0);
//! crossbeam::thread::scope(|s| {
//!     for _ in 0..4 {
//!         s.spawn(|_| total.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
//!     }
//! })
//! .unwrap();
//! assert_eq!(total.into_inner(), 4);
//! ```

#![warn(missing_docs)]

/// Scoped threads (stand-in for `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Error type carried by a failed [`scope`] call.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to the closure of [`scope`] and to each spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// itself so it can spawn further threads, mirroring crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns.
    ///
    /// Unlike crossbeam, a panicking child propagates the panic at join time
    /// instead of surfacing it in the returned `Result` — callers here
    /// `expect` the result anyway, so the observable behavior matches.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Multi-producer/multi-consumer channels (stand-in for
/// `crossbeam::channel`). Only the blocking bounded flavor the SIRUM
/// service's worker pool needs is provided.
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    /// Error returned by [`Sender::send`] when every [`Receiver`] has been
    /// dropped; carries the unsent message back to the caller.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is handed back.
        Full(T),
        /// Every [`Receiver`] has been dropped; the message is handed back.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every [`Sender`] has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (but senders remain).
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// The sending half of a channel. Cloneable; the channel disconnects
    /// for receivers once every clone is dropped.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while the channel is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Send `value` without blocking: a channel at capacity returns
        /// [`TrySendError::Full`] immediately instead of waiting for a
        /// slot (admission control — the caller decides whether to shed
        /// the load or retry).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    /// The receiving half of a channel. Cloneable: clones share one queue,
    /// so each message is delivered to exactly one receiver (work-stealing
    /// worker-pool semantics). Receivers serialize on an internal lock
    /// while waiting.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Receive the next message, blocking until one arrives or every
        /// sender is dropped (buffered messages are still delivered after
        /// disconnection, then [`RecvError`]).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Create a channel holding at most `cap` in-flight messages; `send`
    /// blocks once the buffer is full (backpressure). `cap` is clamped to
    /// ≥ 1 (crossbeam's zero-capacity rendezvous channel is not needed
    /// here and `std::sync::mpsc`'s rendezvous handshake differs subtly).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod channel_tests {
    use super::channel;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn round_trips_in_order_single_consumer() {
        let (tx, rx) = channel::bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn cloned_receivers_split_the_work() {
        let (tx, rx) = channel::bounded(4);
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                while rx.recv().is_ok() {
                    done.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            done.load(Ordering::Relaxed),
            100,
            "each message delivered once"
        );
    }

    #[test]
    fn send_fails_once_receivers_are_gone() {
        let (tx, rx) = channel::bounded(1);
        drop(rx);
        let err = tx.send(7u32).unwrap_err();
        assert_eq!(err.0, 7);
        assert!(err.to_string().contains("disconnected"));
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = channel::bounded(2);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn try_send_reports_full_and_disconnected_without_blocking() {
        let (tx, rx) = channel::bounded(1);
        tx.try_send(1).unwrap();
        match tx.try_send(2) {
            Err(channel::TrySendError::Full(v)) => assert_eq!(v, 2),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(3));
        drop(rx);
        match tx.try_send(4) {
            Err(channel::TrySendError::Disconnected(v)) => assert_eq!(v, 4),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = channel::bounded(1);
        tx.send(0).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(1).unwrap(); // blocks until the first recv below
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let values: Vec<u32> = (0..100).collect();
        super::thread::scope(|s| {
            for chunk in values.chunks(25) {
                s.spawn(|_| {
                    counter.fetch_add(chunk.len(), Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.into_inner(), 100);
    }

    #[test]
    fn scope_returns_closure_value() {
        let out = super::thread::scope(|_| 42).unwrap();
        assert_eq!(out, 42);
    }
}
