//! Offline stand-in for the subset of the `rand` crate that the SIRUM
//! workspace uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods `gen`/`gen_range`/`gen_bool`, and
//! [`seq::index::sample`] for without-replacement index sampling.
//!
//! The container this workspace builds in has no network access to a crates
//! registry, so the external dependency is gated behind this vendored crate
//! (see `vendor/README.md`). The generator is xoshiro256++ seeded with
//! SplitMix64 — deterministic for a given seed, which is all the workspace
//! relies on (every caller seeds explicitly with `seed_from_u64`).
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0..10u64);
//! assert!(k < 10);
//! ```

#![warn(missing_docs)]

/// A low-level source of randomness: a stream of `u64`/`u32` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] "standard"
/// distribution (the stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value in the range. Panics on an empty range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`] (the stand-in for
/// `rand::Rng`). Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution of `T` (uniform bits;
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the same stream as upstream `rand`'s ChaCha-based `StdRng`; the
    /// workspace only relies on determinism-per-seed, not on a particular
    /// stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::RngCore;
        use std::collections::HashMap;

        /// A set of sampled indices (stand-in for `rand::seq::index::IndexVec`).
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterate over the sampled indices by value.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Convert into a plain vector of indices.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices uniformly from `0..length` via a
        /// sparse partial Fisher–Yates shuffle: O(`amount`) time and memory
        /// regardless of `length` (callers pass dataset-sized lengths to
        /// draw a few dozen indices). Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            // `swapped[i]` is the value a dense pool would hold at slot `i`
            // after the swaps so far; untouched slots implicitly hold `i`.
            let mut swapped: HashMap<usize, usize> = HashMap::with_capacity(amount * 2);
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let span = (length - i) as u64;
                let j = i + (rng.next_u64() % span) as usize;
                let picked = swapped.get(&j).copied().unwrap_or(j);
                let displaced = swapped.get(&i).copied().unwrap_or(i);
                swapped.insert(j, displaced);
                out.push(picked);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn index_sample_is_without_replacement() {
        let mut r = StdRng::seed_from_u64(3);
        let idx = super::seq::index::sample(&mut r, 100, 20);
        let mut v = idx.into_vec();
        assert_eq!(v.len(), 20);
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 20);
        assert!(v.iter().all(|&i| i < 100));
    }

    #[test]
    fn index_sample_full_draw_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v = super::seq::index::sample(&mut r, 50, 50).into_vec();
        v.sort_unstable();
        assert_eq!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_handles_large_lengths() {
        // The sparse shuffle must stay O(amount): a dense pool of this size
        // would be slow and memory-hungry.
        let mut r = StdRng::seed_from_u64(5);
        let mut v = super::seq::index::sample(&mut r, usize::MAX / 2, 64).into_vec();
        assert_eq!(v.len(), 64);
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 64);
    }

    #[test]
    fn index_sample_covers_all_indices_over_draws() {
        // Every index must be reachable (no off-by-one bias at the ends).
        let mut r = StdRng::seed_from_u64(6);
        let mut seen = [false; 10];
        for _ in 0..200 {
            for i in super::seq::index::sample(&mut r, 10, 3).iter() {
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
