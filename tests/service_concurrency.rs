//! Concurrency stress tests for the service layer: one shared
//! [`SirumService`] under N threads × M mixed requests, asserting
//! (1) per-request results bit-identical to the single-threaded
//! [`SirumSession`] path, (2) cache-hit identity (the same allocation is
//! returned, observable via `Arc::ptr_eq`), and (3) clean cooperative
//! cancellation mid-mine.
//!
//! CI runs this file additionally in release mode (more real parallelism
//! per wall-clock second).

use sirum::prelude::*;
use std::sync::mpsc;
use std::sync::Arc;

/// Bit-exact signature of everything deterministic in a mining result
/// (timings are wall-clock and excluded by design).
fn signature(result: &MiningResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in &result.rules {
        let codes: Vec<String> = (0..r.rule.arity())
            .map(|i| r.rule.get(i).to_string())
            .collect();
        let _ = write!(
            out,
            "[{} a{:x} c{} g{:x}]",
            codes.join(","),
            r.avg_measure.to_bits(),
            r.count,
            r.gain.to_bits()
        );
    }
    let kl: Vec<String> = result
        .kl_trace
        .iter()
        .map(|k| format!("{:x}", k.to_bits()))
        .collect();
    let _ = write!(
        out,
        "|kl:{}|si:{:?}|anc:{}|it:{}|shift:{:x}|c:{}",
        kl.join(","),
        result.scaling_iterations,
        result.ancestors_emitted,
        result.iterations,
        result.transform_shift.to_bits(),
        result.cancelled
    );
    out
}

/// The mixed request workload: distinct (table, k, variant, two-sided,
/// seed) combinations so concurrent jobs cannot all hit one cache entry.
struct Spec {
    table: &'static str,
    k: usize,
    variant: Option<Variant>,
    two_sided: bool,
    seed: u64,
}

const SPECS: [Spec; 4] = [
    Spec {
        table: "gdelt",
        k: 3,
        variant: None,
        two_sided: false,
        seed: 42,
    },
    Spec {
        table: "gdelt",
        k: 2,
        variant: Some(Variant::Rct),
        two_sided: false,
        seed: 7,
    },
    Spec {
        table: "income",
        k: 3,
        variant: None,
        two_sided: true,
        seed: 42,
    },
    Spec {
        table: "income",
        k: 2,
        variant: Some(Variant::MultiRule),
        two_sided: false,
        seed: 11,
    },
];

fn apply_service<'a>(request: ServiceRequest<'a>, spec: &Spec) -> ServiceRequest<'a> {
    let mut request = request.k(spec.k).seed(spec.seed);
    if let Some(v) = spec.variant {
        request = request.variant(v);
    }
    if spec.two_sided {
        request = request.two_sided();
    }
    request
}

fn apply_session<'a>(request: MiningRequest<'a>, spec: &Spec) -> MiningRequest<'a> {
    let mut request = request.k(spec.k).seed(spec.seed);
    if let Some(v) = spec.variant {
        request = request.variant(v);
    }
    if spec.two_sided {
        request = request.two_sided();
    }
    request
}

fn register_workload(service: &SirumService) {
    service.register_demo_with("gdelt", Some(1_200), 5).unwrap();
    service
        .register_demo_with("income", Some(1_000), 9)
        .unwrap();
}

#[test]
fn concurrent_mixed_requests_match_the_session_path_bit_for_bit() {
    // Reference results through the single-threaded session path on an
    // independent engine.
    let mut session = SirumSession::in_memory().unwrap();
    session.register_demo_with("gdelt", Some(1_200), 5).unwrap();
    session
        .register_demo_with("income", Some(1_000), 9)
        .unwrap();
    let reference: Vec<String> = SPECS
        .iter()
        .map(|spec| signature(&apply_session(session.mine(spec.table), spec).run().unwrap()))
        .collect();

    // 8 threads × 4 mixed requests against ONE shared service, all jobs
    // through the pool concurrently.
    let service = SirumService::builder().pool_workers(8).build().unwrap();
    register_workload(&service);
    let threads = 8;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let service = service.clone();
            let reference = &reference;
            scope.spawn(move || {
                // Stagger the spec order per thread so the pool sees a mix.
                for i in 0..SPECS.len() {
                    let idx = (i + t) % SPECS.len();
                    let spec = &SPECS[idx];
                    let handle = apply_service(service.mine(spec.table), spec)
                        .submit()
                        .unwrap();
                    let output = handle.wait().unwrap();
                    assert_eq!(
                        signature(&output.result),
                        reference[idx],
                        "thread {t} spec {idx}: service result diverged from session result"
                    );
                }
            });
        }
    });
    let stats = service.stats();
    let total = (threads * SPECS.len()) as u64;
    assert_eq!(
        stats.jobs_executed + stats.cache_hits + stats.jobs_coalesced,
        total,
        "every request accounted for: {stats:?}"
    );
    assert!(
        stats.cache_hits + stats.jobs_coalesced > 0,
        "32 requests over 4 distinct specs must share executions: {stats:?}"
    );
}

#[test]
fn repeated_requests_hit_the_cache_with_pointer_identity() {
    let service = SirumService::builder().pool_workers(2).build().unwrap();
    register_workload(&service);
    let first = service.mine("gdelt").k(2).submit().unwrap().wait().unwrap();
    assert!(!first.from_cache);
    let hits_before = service.stats().cache_hits;
    let second = service.mine("gdelt").k(2).submit().unwrap().wait().unwrap();
    assert!(second.from_cache, "identical request must be served cached");
    assert!(
        Arc::ptr_eq(&first.result, &second.result),
        "cache hits return the same allocation"
    );
    assert_eq!(service.stats().cache_hits, hits_before + 1);
    assert_eq!(
        service.stats().jobs_executed,
        1,
        "the miner ran exactly once"
    );
}

#[test]
fn cancel_mid_mine_returns_a_partial_result() {
    let service = SirumService::builder().pool_workers(1).build().unwrap();
    service
        .register_demo_with("income", Some(3_000), 13)
        .unwrap();
    // The observer signals the driver after the first iteration, then keeps
    // mining; the driver cancels through the handle, and the cooperative
    // check at the next iteration boundary stops the run.
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let handle = service
        .mine("income")
        .k(20)
        .max_rules(20) // keep the rule budget inside the 64-bit array
        .rules_per_iter(1)
        .on_iteration(move |event| {
            if event.iteration == 1 {
                let _ = started_tx.send(());
            }
            IterationDecision::Continue
        })
        .submit()
        .unwrap();
    started_rx
        .recv_timeout(std::time::Duration::from_secs(60))
        .expect("first iteration reported");
    handle.cancel();
    let output = handle.wait().unwrap();
    assert!(output.result.cancelled, "cancelled mid-mine");
    assert!(!output.from_cache);
    let mined = output.result.rules.len() - 1;
    assert!(
        mined < 20,
        "cancellation must stop before the full k: mined {mined}"
    );
    assert!(mined >= 1, "at least the first iteration completed");
    assert_eq!(service.stats().jobs_cancelled, 1);
    // The partial result was not cached: the same request (sans observer)
    // re-executes.
    let rerun = service
        .mine("income")
        .k(20)
        .max_rules(20)
        .rules_per_iter(1)
        .run()
        .unwrap();
    assert!(!rerun.from_cache);
    assert!(!rerun.result.cancelled);
}

#[test]
fn cancelling_a_queued_job_stops_it_before_the_first_iteration() {
    // One pool worker: the first job occupies it while the second waits in
    // the queue; cancelling the queued job is observed before iteration 1.
    let service = SirumService::builder().pool_workers(1).build().unwrap();
    service
        .register_demo_with("income", Some(2_000), 17)
        .unwrap();
    let blocker = service
        .mine("income")
        .k(6)
        .on_iteration(|_| IterationDecision::Continue) // uncacheable
        .submit()
        .unwrap();
    let queued = service.mine("income").k(6).seed(99).submit().unwrap();
    queued.cancel();
    let queued_output = queued.wait().unwrap();
    assert!(queued_output.result.cancelled);
    assert_eq!(
        queued_output.result.iterations, 0,
        "queued job was cancelled before mining began"
    );
    let blocker_output = blocker.wait().unwrap();
    assert!(!blocker_output.result.cancelled);
}

#[test]
fn dropping_the_service_drains_queued_jobs_before_shutdown() {
    let service = SirumService::builder().pool_workers(1).build().unwrap();
    register_workload(&service);
    let handles: Vec<JobHandle> = (0..6)
        .map(|i| {
            service
                .mine(if i % 2 == 0 { "gdelt" } else { "income" })
                .k(1)
                .seed(i as u64)
                .submit()
                .unwrap()
        })
        .collect();
    drop(service); // joins the pool: queued jobs drain first
    for handle in handles {
        let output = handle.wait().unwrap();
        assert_eq!(output.result.rules.len(), 2);
    }
}
