//! Integration coverage for the fallible session API: every [`SirumError`]
//! variant is exercised end to end through `SirumSession` / `MiningRequest`
//! (plus the layer entry points that produce the wrapped variants), and the
//! direct `Miner` facade is pinned to its fallible-only surface.

use sirum::api::{SirumError, SirumSession};
use sirum::prelude::*;

fn empty_table() -> Table {
    Table::builder(Schema::new(vec!["a", "b"], "m")).build()
}

fn session_with_flights() -> SirumSession {
    let mut session = SirumSession::in_memory().unwrap();
    session.register_demo("flights").unwrap();
    session
}

// ---- SirumError::EmptyDataset --------------------------------------------

#[test]
fn registering_an_empty_table_is_rejected() {
    let mut session = SirumSession::in_memory().unwrap();
    let err = session.register("empty", empty_table()).unwrap_err();
    assert!(matches!(err, SirumError::EmptyDataset), "{err}");
    assert!(err.to_string().contains("empty dataset"));
}

#[test]
fn mining_an_empty_table_is_a_typed_error_not_a_panic() {
    // Direct core path: the old `assert!(n > 0, "empty dataset")`.
    let miner = Miner::new(Engine::in_memory(), SirumConfig::default());
    let err = miner.try_mine(&empty_table()).unwrap_err();
    assert!(matches!(err, SirumError::EmptyDataset));
}

#[test]
fn empty_sample_rate_is_a_typed_error() {
    let session = session_with_flights();
    let err = session.mine("flights").k(2).run_on_sample(0.0).unwrap_err();
    assert!(matches!(err, SirumError::EmptyDataset));
    let err = session.mine("flights").k(2).run_on_sample(1.5).unwrap_err();
    assert!(matches!(
        err,
        SirumError::InvalidConfig { field: "rate", .. }
    ));
}

// ---- SirumError::InvalidConfig -------------------------------------------

#[test]
fn zero_sample_size_names_the_field() {
    let session = session_with_flights();
    let err = session.mine("flights").sample_size(0).run().unwrap_err();
    assert!(
        matches!(
            err,
            SirumError::InvalidConfig {
                field: "strategy.sample_size",
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn zero_column_groups_names_the_field() {
    let session = session_with_flights();
    let err = session.mine("flights").column_groups(0).run().unwrap_err();
    assert!(matches!(
        err,
        SirumError::InvalidConfig {
            field: "column_groups",
            ..
        }
    ));
}

#[test]
fn invalid_multirule_scaling_and_target_fields_are_named() {
    let session = session_with_flights();
    let field = |result: Result<MiningResult, SirumError>| match result.unwrap_err() {
        SirumError::InvalidConfig { field, .. } => field,
        other => panic!("expected InvalidConfig, got {other}"),
    };
    assert_eq!(
        field(session.mine("flights").rules_per_iter(0).run()),
        "multirule.rules_per_iter"
    );
    assert_eq!(
        field(session.mine("flights").epsilon(0.0).run()),
        "scaling.epsilon"
    );
    assert_eq!(
        field(session.mine("flights").epsilon(f64::NAN).run()),
        "scaling.epsilon"
    );
    assert_eq!(
        field(session.mine("flights").max_scaling_iterations(0).run()),
        "scaling.max_iterations"
    );
    assert_eq!(
        field(session.mine("flights").target_kl(-0.5).run()),
        "target_kl"
    );
    assert_eq!(
        field(session.mine("flights").target_kl(0.1).max_rules(0).run()),
        "max_rules"
    );
    // Rule budget beyond the 64-bit rule-coverage arrays.
    assert_eq!(field(session.mine("flights").k(1_000).run()), "k/max_rules");
}

#[test]
fn wrong_arity_prior_rules_are_rejected_not_panicking() {
    let session = session_with_flights();
    // flights has 3 dimensions; a 1-dimension prior must be a typed error.
    let err = session
        .mine("flights")
        .k(2)
        .prior(vec![Rule::from_values(vec![WILDCARD])])
        .run()
        .unwrap_err();
    assert!(
        matches!(err, SirumError::InvalidConfig { field: "prior", .. }),
        "{err}"
    );
    // Same guard on the offline evaluator's rule list.
    let bad = vec![
        Rule::all_wildcards(3),
        Rule::from_values(vec![WILDCARD, WILDCARD]),
    ];
    let err = session
        .evaluate("flights", &bad, &ScalingConfig::default())
        .unwrap_err();
    assert!(matches!(
        err,
        SirumError::InvalidConfig { field: "rules", .. }
    ));
}

#[test]
fn unknown_variant_spelling_is_invalid_config() {
    let err = "warp-speed".parse::<Variant>().unwrap_err();
    assert!(matches!(
        err,
        SirumError::InvalidConfig {
            field: "variant",
            ..
        }
    ));
    assert!(err.to_string().contains("optimized"), "lists valid names");
}

#[test]
fn config_validate_is_directly_callable() {
    let config = SirumConfig {
        column_groups: 0,
        ..SirumConfig::default()
    };
    assert!(config.validate().is_err());
    assert!(SirumConfig::default().validate().is_ok());
}

// ---- SirumError::InvalidMeasure ------------------------------------------

#[test]
fn non_finite_measures_are_rejected_at_registration() {
    let mut table = Table::builder(Schema::new(vec!["a"], "m"));
    table.push_row(&["x"], 1.0);
    table.push_row(&["y"], f64::NAN);
    let mut session = SirumSession::in_memory().unwrap();
    let err = session.register("bad", table.build()).unwrap_err();
    match err {
        SirumError::InvalidMeasure { reason } => {
            assert!(reason.contains("row 1"), "{reason}");
        }
        other => panic!("expected InvalidMeasure, got {other}"),
    }
}

// ---- SirumError::UnknownTable --------------------------------------------

#[test]
fn unknown_table_lists_registered_names() {
    let session = session_with_flights();
    let err = session.mine("nope").run().unwrap_err();
    match &err {
        SirumError::UnknownTable { name, registered } => {
            assert_eq!(name, "nope");
            assert_eq!(registered, &vec!["flights".to_string()]);
        }
        other => panic!("expected UnknownTable, got {other}"),
    }
    assert!(err.to_string().contains("flights"));
}

// ---- SirumError::UnknownDemo ---------------------------------------------

#[test]
fn unknown_demo_name_is_rejected() {
    let mut session = SirumSession::in_memory().unwrap();
    let err = session.register_demo("nonesuch").unwrap_err();
    assert!(matches!(err, SirumError::UnknownDemo { ref name } if name == "nonesuch"));
    assert!(err.to_string().contains("flights"), "lists valid demos");
}

// ---- SirumError::Table ---------------------------------------------------

#[test]
fn malformed_csv_surfaces_as_table_errors() {
    let mut session = SirumSession::in_memory().unwrap();
    let err = session
        .register_csv("ragged", &b"a,b,m\nx,y,1\nx,2\n"[..])
        .unwrap_err();
    assert!(matches!(
        err,
        SirumError::Table(TableError::RaggedLine {
            line: 3,
            expected: 3,
            found: 2
        })
    ));
    let err = session
        .register_csv("nonnum", &b"a,m\nx,not-a-number\n"[..])
        .unwrap_err();
    assert!(matches!(
        err,
        SirumError::Table(TableError::BadMeasure { line: 2, .. })
    ));
    let err = session.register_csv("empty", &b""[..]).unwrap_err();
    assert!(matches!(err, SirumError::Table(TableError::EmptyInput)));
    let err = session
        .register_csv("dup", &b"a,a,m\nx,y,1\n"[..])
        .unwrap_err();
    assert!(matches!(
        err,
        SirumError::Table(TableError::DuplicateDimension { .. })
    ));
}

// ---- SirumError::Dataflow ------------------------------------------------

#[test]
fn invalid_engine_config_surfaces_from_the_session_builder() {
    let err = SirumSession::builder().partitions(0).build().unwrap_err();
    assert!(matches!(
        err,
        SirumError::Dataflow(DataflowError::InvalidConfig {
            field: "partitions",
            ..
        })
    ));
    let err = SirumSession::builder().workers(0).build().unwrap_err();
    assert!(matches!(
        err,
        SirumError::Dataflow(DataflowError::InvalidConfig {
            field: "workers",
            ..
        })
    ));
}

#[test]
fn unknown_engine_mode_spelling_is_typed() {
    let err = "mapreduce-classic".parse::<EngineMode>().unwrap_err();
    assert!(matches!(err, DataflowError::UnknownMode { ref name } if name == "mapreduce-classic"));
    assert_eq!("disk-mr".parse::<EngineMode>().unwrap(), EngineMode::DiskMr);
}

// ---- Observer: progress + graceful cancellation --------------------------

#[test]
fn observer_sees_every_iteration_and_can_cancel() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let mut session = SirumSession::in_memory().unwrap();
    session
        .register_demo_with("income", Some(1_500), 5)
        .unwrap();

    let events = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&events);
    let full = session
        .mine("income")
        .k(4)
        .sample_size(32)
        .on_iteration(move |event| {
            assert!(event.kl.is_finite());
            assert!(event.rules_total > event.rules_mined);
            seen.fetch_add(1, Ordering::Relaxed);
            IterationDecision::Continue
        })
        .run()
        .unwrap();
    assert!(!full.cancelled);
    assert_eq!(events.load(Ordering::Relaxed), full.iterations);

    // Cancelling after the first iteration returns a partial result.
    let partial = session
        .mine("income")
        .k(4)
        .sample_size(32)
        .on_iteration(|_| IterationDecision::Stop)
        .run()
        .unwrap();
    assert!(partial.cancelled);
    assert_eq!(partial.iterations, 1);
    assert!(partial.rules.len() < full.rules.len());
}

// ---- Fallible miner facade -------------------------------------------------
// (The panicking `Miner::mine`/`mine_with_prior` shims from the pre-session
// API are gone; `try_mine` is the only direct entry point.)

#[test]
fn direct_miner_facade_is_fallible_only() {
    let flights = generators::flights();
    let config = SirumConfig {
        k: 3,
        strategy: CandidateStrategy::SampleLca { sample_size: 14 },
        ..SirumConfig::default()
    };
    let result = Miner::new(Engine::in_memory(), config)
        .try_mine(&flights)
        .unwrap();
    assert_eq!(result.rules.len(), 4);
    // Invalid input is a typed error, never a panic.
    let bad = SirumConfig {
        k: 3,
        strategy: CandidateStrategy::SampleLca { sample_size: 0 },
        ..SirumConfig::default()
    };
    assert!(matches!(
        Miner::new(Engine::in_memory(), bad).try_mine(&flights),
        Err(SirumError::InvalidConfig { .. })
    ));
}

// ---- Parity: the new API reproduces the old results ----------------------

#[test]
fn session_request_matches_direct_miner_output() {
    let session = session_with_flights();
    let via_session = session.mine("flights").k(3).sample_size(14).run().unwrap();

    let config = SirumConfig {
        k: 3,
        strategy: CandidateStrategy::SampleLca { sample_size: 14 },
        ..SirumConfig::default()
    };
    let direct = Miner::new(Engine::in_memory(), config)
        .try_mine(session.table("flights").unwrap())
        .unwrap();

    let names = |r: &MiningResult| -> Vec<String> {
        let t = session.table("flights").unwrap();
        r.rules.iter().map(|m| m.rule.display(t)).collect()
    };
    assert_eq!(names(&via_session), names(&direct));
    assert_eq!(via_session.final_kl(), direct.final_kl());
}

// ---- Service-layer errors -------------------------------------------------

#[test]
fn service_unknown_table_and_invalid_config_surface_at_submit() {
    let service = SirumService::in_memory().unwrap();
    let err = service.mine("nope").k(2).submit().unwrap_err();
    assert!(matches!(err, SirumError::UnknownTable { .. }));
    service.register_demo("flights").unwrap();
    let err = service.mine("flights").sample_size(0).submit().unwrap_err();
    assert!(
        matches!(err, SirumError::InvalidConfig { field, .. } if field == "strategy.sample_size")
    );
}

#[test]
fn service_error_variant_displays_its_reason() {
    let err = SirumError::service("worker pool has shut down");
    assert!(err.to_string().contains("service error"));
    assert!(err.to_string().contains("worker pool"));
    assert!(matches!(err, SirumError::Service { .. }));
}

#[test]
fn double_consuming_a_job_handle_is_a_typed_service_error() {
    let service = SirumService::in_memory().unwrap();
    service.register_demo("flights").unwrap();
    let mut handle = service
        .mine("flights")
        .k(1)
        .sample_size(14)
        .submit()
        .unwrap();
    loop {
        if let Some(outcome) = handle.try_poll() {
            outcome.unwrap();
            break;
        }
        std::thread::yield_now();
    }
    assert!(matches!(handle.wait(), Err(SirumError::Service { .. })));
}

#[test]
fn stream_rejects_negative_measure_tables_and_bad_batches() {
    let service = SirumService::in_memory().unwrap();
    // A table with a negative measure cannot seed a stream.
    let mut builder = Table::builder(Schema::new(vec!["A"], "m"));
    builder.push_row(&["x"], -1.0);
    builder.push_row(&["y"], 2.0);
    service.register("neg", builder.build()).unwrap();
    assert!(matches!(
        service.stream("neg"),
        Err(SirumError::InvalidMeasure { .. })
    ));
    // Bad batches are typed errors, not panics.
    service.register_demo("flights").unwrap();
    let mut stream = service.stream("flights").unwrap();
    assert!(matches!(
        stream.ingest(&[(&[0u32][..], 1.0)]),
        Err(SirumError::InvalidConfig { .. })
    ));
    assert!(matches!(
        stream.ingest(&[(&[0u32, 0, 0][..], f64::NAN)]),
        Err(SirumError::InvalidMeasure { .. })
    ));
}
