//! Smoke tests for the `examples/` walkthroughs: each must run to
//! completion (exit code 0). `cargo test` builds example targets before
//! running integration tests, so the binaries are invoked directly from
//! `target/<profile>/examples/` — no nested cargo.
//!
//! `SIRUM_EXAMPLE_ROWS` scales the cube-exploration dataset down so the
//! debug-profile run stays fast; the other examples use fixed small inputs.

use std::path::PathBuf;
use std::process::Command;

/// Directory holding the built example binaries for the current profile.
fn examples_dir() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // <target>/<profile>/deps/<test-bin> -> deps/
    dir.pop(); // -> <target>/<profile>/
    dir.push("examples");
    dir
}

fn run_example(name: &str) {
    let bin = examples_dir().join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    assert!(
        bin.exists(),
        "example binary {} not built (cargo builds examples before integration tests)",
        bin.display()
    );
    let output = Command::new(&bin)
        .env("SIRUM_EXAMPLE_ROWS", "1500")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", bin.display()));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        !output.stdout.is_empty(),
        "example {name} produced no output"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn cube_exploration_runs() {
    run_example("cube_exploration");
}

#[test]
fn data_cleansing_runs() {
    run_example("data_cleansing");
}

#[test]
fn sampling_tradeoff_runs() {
    run_example("sampling_tradeoff");
}

#[test]
fn concurrent_service_runs() {
    run_example("concurrent_service");
}
