//! Cross-crate integration tests: the distributed miner against the
//! centralized prior-work oracle, the worked examples of the thesis, and
//! whole-pipeline invariants.

use sirum::baselines::{mine_centralized, CentralizedConfig, SampleSource};
use sirum::core::evaluate_rules;
use sirum::prelude::*;

fn shared_sample(table: &Table, engine: &Engine, size: usize, seed: u64) -> Vec<Box<[u32]>> {
    // Draw the sample exactly the way the distributed miner does, so the
    // centralized oracle sees the same candidate space.
    let tuples: Vec<(Box<[u32]>, f64, f64, u64)> = (0..table.num_rows())
        .map(|i| {
            (
                table.row(i).to_vec().into_boxed_slice(),
                table.measure(i),
                1.0,
                0u64,
            )
        })
        .collect();
    let data = engine.parallelize_default(tuples);
    data.take_sample(size, seed)
        .into_iter()
        .map(|(dims, _, _, _)| dims)
        .collect()
}

#[test]
fn distributed_miner_matches_centralized_oracle() {
    // Rule-for-rule agreement between the dataflow implementation and the
    // independent single-machine implementation of El Gebaly et al.
    for (name, table) in [
        ("income", generators::income_like(1_200, 5)),
        ("gdelt", generators::gdelt_like(1_200, 5)),
    ] {
        let engine = Engine::in_memory();
        let seed = 42;
        let sample = shared_sample(&table, &engine, 32, seed);

        let distributed = {
            let config = SirumConfig {
                k: 4,
                strategy: CandidateStrategy::SampleLca { sample_size: 32 },
                seed,
                ..SirumConfig::default()
            };
            Miner::new(engine.clone(), config).try_mine(&table).unwrap()
        };
        let centralized = mine_centralized(
            &table,
            &CentralizedConfig {
                k: 4,
                sample: SampleSource::Explicit(sample),
                ..Default::default()
            },
        );

        let d_rules: Vec<&Rule> = distributed.rules.iter().map(|r| &r.rule).collect();
        let c_rules: Vec<&Rule> = centralized.rules.iter().map(|r| &r.rule).collect();
        assert_eq!(d_rules, c_rules, "dataset {name}");
        for (d, c) in distributed.rules.iter().zip(&centralized.rules) {
            assert_eq!(d.count, c.count, "dataset {name} rule {:?}", d.rule);
            assert!(
                (d.avg_measure - c.avg_measure).abs() < 1e-6,
                "dataset {name} rule {:?}",
                d.rule
            );
        }
        assert!(
            (distributed.final_kl() - centralized.final_kl()).abs() < 1e-3,
            "dataset {name}: {} vs {}",
            distributed.final_kl(),
            centralized.final_kl()
        );
    }
}

#[test]
fn flight_walkthrough_matches_the_thesis() {
    // Tables 1.1/1.2 end to end via the facade crate.
    let flights = generators::flights();
    let engine = Engine::in_memory();
    let config = SirumConfig {
        k: 3,
        strategy: CandidateStrategy::SampleLca { sample_size: 14 },
        ..SirumConfig::default()
    };
    let result = Miner::new(engine, config).try_mine(&flights).unwrap();
    let names: Vec<String> = result
        .rules
        .iter()
        .map(|r| r.rule.display(&flights))
        .collect();
    assert_eq!(
        names,
        vec!["(*, *, *)", "(*, *, London)", "(Fri, *, *)", "(Sat, *, *)"],
        "Table 1.2 rule set"
    );
    let avgs: Vec<f64> = result.rules.iter().map(|r| r.avg_measure).collect();
    assert!((avgs[0] - 10.4).abs() < 0.05);
    assert!((avgs[1] - 15.25).abs() < 0.05); // paper rounds to 15.3
    assert!((avgs[2] - 18.0).abs() < 1e-9);
    assert!((avgs[3] - 16.0).abs() < 1e-9);
    let counts: Vec<u64> = result.rules.iter().map(|r| r.count).collect();
    assert_eq!(counts, vec![14, 4, 2, 2]);
}

#[test]
fn mined_rules_evaluate_consistently_offline() {
    // The KL the miner reports must agree with the offline evaluator.
    let table = generators::income_like(2_000, 77);
    let engine = Engine::in_memory();
    let config = SirumConfig {
        k: 4,
        strategy: CandidateStrategy::SampleLca { sample_size: 32 },
        scaling: ScalingConfig {
            epsilon: 1e-6,
            max_iterations: 100_000,
        },
        ..SirumConfig::default()
    };
    let result = Miner::new(engine, config).try_mine(&table).unwrap();
    let rules: Vec<Rule> = result.rules.iter().map(|r| r.rule.clone()).collect();
    let eval = evaluate_rules(
        &table,
        &rules,
        &ScalingConfig {
            epsilon: 1e-6,
            max_iterations: 100_000,
        },
    );
    assert!(
        (eval.kl - result.final_kl()).abs() < 1e-3,
        "offline {} vs miner {}",
        eval.kl,
        result.final_kl()
    );
    assert!(eval.binary_kl.is_some(), "income measure is binary");
}

#[test]
fn csv_round_trip_preserves_mining_results() {
    let table = generators::gdelt_dirty(1_000, 9);
    let mut buf = Vec::new();
    sirum::table::csv::write_csv(&table, &mut buf).unwrap();
    let reread = sirum::table::csv::read_csv(buf.as_slice()).unwrap();

    let mine = |t: &Table| -> Vec<String> {
        let config = SirumConfig {
            k: 3,
            strategy: CandidateStrategy::SampleLca { sample_size: 16 },
            ..SirumConfig::default()
        };
        Miner::new(Engine::in_memory(), config)
            .try_mine(t)
            .unwrap()
            .rules
            .iter()
            .map(|r| r.rule.display(t))
            .collect()
    };
    assert_eq!(mine(&table), mine(&reread));
}

#[test]
fn cluster_cost_model_scales_plausibly() {
    use sirum::dataflow::cost::{makespan, ClusterSpec};
    let table = generators::income_like(4_000, 21);
    let engine = Engine::new(EngineConfig::in_memory().with_partitions(32));
    // The staged pipeline: the cost model's executor scaling shows up in
    // its shuffle stages (the fused sweep has none — see below).
    let config = SirumConfig {
        k: 3,
        strategy: CandidateStrategy::SampleLca { sample_size: 32 },
        gain_sweep: false,
        ..SirumConfig::default()
    };
    let _ = Miner::new(engine.clone(), config).try_mine(&table).unwrap();
    let stages = engine.metrics().stages();
    assert!(stages.len() > 10, "a mining run spans many stages");
    let spec = ClusterSpec::paper_cluster();
    let t16 = makespan(&stages, &spec.with_executors(16));
    let t2 = makespan(&stages, &spec.with_executors(2));
    assert!(t16 < t2, "more executors must not be slower");
    assert!(
        t2 / t16 < 8.0 + 1e-9,
        "speedup is bounded by the executor ratio"
    );
    // The sweep run replays through the same model with fewer stages and
    // zero candidate-pipeline shuffle volume, so it never models slower.
    let sweep_engine = Engine::new(EngineConfig::in_memory().with_partitions(32));
    let sweep_config = SirumConfig {
        k: 3,
        strategy: CandidateStrategy::SampleLca { sample_size: 32 },
        ..SirumConfig::default()
    };
    let _ = Miner::new(sweep_engine.clone(), sweep_config)
        .try_mine(&table)
        .unwrap();
    let sweep_stages = sweep_engine.metrics().stages();
    assert!(sweep_stages.len() < stages.len(), "the sweep fuses stages");
    let swept_shuffle: u64 = sweep_stages.iter().map(|s| s.shuffled_records).sum();
    let staged_shuffle: u64 = stages.iter().map(|s| s.shuffled_records).sum();
    assert!(swept_shuffle < staged_shuffle, "the sweep avoids shuffles");
}
