//! End-to-end tests for the wire front end: a real `TcpListener`, real
//! sockets, and hostile clients. The mined-result contract is checked
//! bit-for-bit against the in-process path.

use sirum::json::{mining_result_to_json, parse_json, JsonValue};
use sirum::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn spawn_server_with(configure: impl FnOnce(ServiceBuilder) -> ServiceBuilder) -> Server {
    let service = configure(SirumService::builder())
        .build()
        .expect("service builds");
    service.register_demo("flights").expect("demo registers");
    let router = Router::new(
        service,
        Arc::new(NetMetrics::new()),
        RouterConfig::default(),
    );
    let config = ServerConfig {
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", router, config).expect("bind ephemeral port")
}

fn spawn_server() -> Server {
    spawn_server_with(|b| b)
}

fn client(server: &Server) -> HttpClient {
    HttpClient::new(server.local_addr()).timeout(Duration::from_secs(30))
}

/// Send raw bytes, read whatever comes back until the server closes.
fn raw_exchange(server: &Server, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(bytes).expect("write");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut reply = String::new();
    let _ = stream.read_to_string(&mut reply);
    reply
}

fn json_body(response: &ClientResponse) -> JsonValue {
    response.json().expect("JSON body")
}

#[test]
fn mined_result_over_tcp_is_bit_identical_to_in_process() {
    let server = spawn_server();
    let mut http = client(&server);

    // Upload a table over the wire…
    let csv = b"city,color,n\nparis,red,3\nparis,blue,4\nlyon,red,5\nlyon,blue,2\nnice,red,7\n";
    let uploaded = http
        .post("/tables/trips", csv, "text/csv")
        .expect("upload succeeds");
    assert_eq!(uploaded.status, 200, "{}", uploaded.text());

    // …and register the identical bytes in a separate in-process service.
    let local = SirumService::in_memory().expect("local service");
    local
        .register_csv("trips", &csv[..])
        .expect("local register");

    // Mine over HTTP.
    let response = http
        .post_json("/tables", "{}") // wrong usage first: typed 422, keep-alive survives
        .expect("bad request still answered");
    assert_eq!(response.status, 422);
    let response = http
        .post_json(
            "/mine",
            r#"{"table":"trips","k":2,"sample_size":5,"seed":7}"#,
        )
        .expect("mine over the wire");
    assert_eq!(response.status, 200, "{}", response.text());
    let wire = json_body(&response);
    assert_eq!(wire.get("state").and_then(|s| s.as_str()), Some("done"));

    // Mine the same request in process and render through the same
    // serializer: the wire payload must match bit for bit.
    let output = local
        .mine("trips")
        .k(2)
        .sample_size(5)
        .seed(7)
        .run()
        .expect("local mine");
    let table = local.table("trips").expect("table");
    let expected = mining_result_to_json(&output.result, &table);
    let got = wire.get("result").expect("result attached").render();
    // Strip the one run-dependent field (wall-clock timings); everything
    // else — rules, gains, KL trace, scaling iterations — must be
    // bit-identical between the wire and in-process paths.
    let strip = |rendered: &str| -> Vec<(String, JsonValue)> {
        parse_json(rendered)
            .expect("result parses")
            .entries()
            .expect("result is an object")
            .iter()
            .filter(|(k, _)| k != "timings")
            .cloned()
            .collect()
    };
    assert_eq!(
        strip(&expected),
        strip(&got),
        "wire result diverges from the in-process path"
    );
    server.shutdown();
}

#[test]
fn async_jobs_explain_stream_and_stats_work_over_tcp() {
    let server = spawn_server();
    let mut http = client(&server);

    // Async submit: wait_ms=0 always answers 202 with a job id.
    let response = http
        .post_json(
            "/mine",
            r#"{"table":"flights","k":2,"sample_size":14,"wait_ms":0}"#,
        )
        .expect("submit");
    assert_eq!(response.status, 202, "{}", response.text());
    let id = json_body(&response)
        .get("job")
        .and_then(|j| j.as_u64())
        .expect("job id");

    // Poll to completion with a server-side wait.
    let response = http
        .get(&format!("/jobs/{id}?wait_ms=30000"))
        .expect("poll job");
    assert_eq!(response.status, 200, "{}", response.text());
    let body = json_body(&response);
    assert_eq!(body.get("state").and_then(|s| s.as_str()), Some("done"));
    assert!(body.get("result").is_some(), "finished job carries result");

    // Explain is read-only planning.
    let response = http
        .get("/explain?table=flights&k=3&sample_size=14")
        .expect("explain");
    assert_eq!(response.status, 200);
    assert_eq!(
        json_body(&response).get("cached").and_then(|c| c.as_bool()),
        Some(false)
    );

    // Stream rows into the incremental model.
    let table_rows = {
        let response = http.get("/tables").expect("tables");
        json_body(&response)
            .get("tables")
            .and_then(|t| t.as_array())
            .and_then(|t| t.first().cloned())
            .and_then(|t| t.get("rows").and_then(|r| r.as_u64()))
            .expect("row count")
    };
    let response = http
        .post_json("/stream/flights", r#"{"rows":[],"mine_more":1}"#)
        .expect("stream");
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(
        json_body(&response).get("rows").and_then(|r| r.as_u64()),
        Some(table_rows)
    );

    // Metrics + stats reflect the traffic above.
    let response = http.get("/metrics").expect("metrics");
    let metrics = json_body(&response);
    let mine_count = metrics
        .get("endpoints")
        .and_then(|e| e.get("mine"))
        .and_then(|m| m.get("latency"))
        .and_then(|l| l.get("count"))
        .and_then(|c| c.as_u64())
        .expect("mine histogram count");
    assert!(
        mine_count >= 1,
        "mine endpoint recorded {mine_count} samples"
    );
    let response = http.get("/stats").expect("stats");
    let stats = json_body(&response);
    assert!(
        stats
            .get("job_latency")
            .and_then(|l| l.get("count"))
            .and_then(|c| c.as_u64())
            .expect("job latency count")
            >= 1
    );
    server.shutdown();
}

#[test]
fn hostile_wire_inputs_get_clean_4xx_not_hangs() {
    let server = spawn_server();

    // Binary garbage → 400.
    let reply = raw_exchange(&server, b"\x00\xff\x00\xff\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

    // Unsupported version → 400.
    let reply = raw_exchange(&server, b"GET /health HTTP/0.9\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

    // Bad Content-Length → 400.
    let reply = raw_exchange(
        &server,
        b"POST /mine HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

    // Truncated body (declares 50 bytes, sends 5) → 400.
    let reply = raw_exchange(
        &server,
        b"POST /mine HTTP/1.1\r\ncontent-length: 50\r\n\r\n{\"t\":",
    );
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

    // Chunked encoding is out of scope → 501.
    let reply = raw_exchange(
        &server,
        b"POST /mine HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 501"), "{reply}");

    // Oversized declared body → 413 without reading it.
    let reply = raw_exchange(
        &server,
        b"POST /mine HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");

    // A huge header block → 431.
    let mut big = b"GET /health HTTP/1.1\r\n".to_vec();
    for i in 0..2000 {
        big.extend_from_slice(format!("x-pad-{i}: {:0>32}\r\n", i).as_bytes());
    }
    big.extend_from_slice(b"\r\n");
    let reply = raw_exchange(&server, &big);
    assert!(reply.starts_with("HTTP/1.1 431"), "{reply}");

    // Malformed JSON body → 400 from the router, not a panic.
    let reply = raw_exchange(
        &server,
        b"POST /mine HTTP/1.1\r\ncontent-length: 9\r\n\r\n{\"table\":",
    );
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

    // The server survived all of it.
    let reply = raw_exchange(&server, b"GET /health HTTP/1.1\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    server.shutdown();
}

#[test]
fn slow_loris_is_cut_off_by_the_read_timeout() {
    let server = spawn_server(); // 500 ms read timeout
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Dribble a request head and then stall forever.
    stream.write_all(b"GET /hea").expect("partial write");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client timeout");
    let mut reply = String::new();
    let _ = stream.read_to_string(&mut reply);
    // The server must answer 408 (or at minimum close the socket) rather
    // than holding the connection open indefinitely.
    assert!(
        reply.is_empty() || reply.starts_with("HTTP/1.1 408"),
        "unexpected slow-loris reply: {reply}"
    );
    // And the accept loop never stalled behind the loris.
    let reply = raw_exchange(&server, b"GET /health HTTP/1.1\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    server.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = spawn_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .write_all(
            b"GET /health HTTP/1.1\r\n\r\n\
              GET /tables HTTP/1.1\r\n\r\n\
              GET /health HTTP/1.1\r\nconnection: close\r\n\r\n",
        )
        .expect("pipelined write");
    let mut reply = String::new();
    let _ = stream.read_to_string(&mut reply);
    // Responses have no trailing CRLF after the body, so a pipelined
    // successor's status line is glued to the previous body: count
    // occurrences rather than lines.
    assert_eq!(reply.matches("HTTP/1.1 200 OK\r\n").count(), 3, "{reply}");
    assert!(reply.contains("\"tables\""), "{reply}");
    server.shutdown();
}

#[test]
fn overload_sheds_with_429_and_the_server_stays_responsive() {
    // One worker, queue of one: the second concurrent mine must shed.
    let server = spawn_server_with(|b| b.pool_workers(1).queue_capacity(1));
    let mut http = client(&server);

    // Saturate the single worker and its one queue slot with submits that
    // return immediately (`wait_ms: 0`). Distinct seeds keep the requests
    // from coalescing or hitting the cache, so each one needs the worker.
    let mut saw_429 = false;
    let mut submitted = 0_u64;
    for seed in 0..200 {
        let body = format!(
            "{{\"table\":\"flights\",\"k\":4,\"sample_size\":14,\"seed\":{seed},\"wait_ms\":0}}"
        );
        let response = http.post_json("/mine", &body).expect("submit");
        match response.status {
            202 => submitted += 1,
            429 => {
                saw_429 = true;
                assert_eq!(
                    response.header("retry-after"),
                    Some("1"),
                    "429 must carry Retry-After"
                );
            }
            other => panic!("unexpected status {other}: {}", response.text()),
        }
        if saw_429 && submitted >= 1 {
            break;
        }
    }
    assert!(saw_429, "queue of 1 never shed load across 50 submits");

    // The server still answers cheap endpoints while overloaded.
    let response = http.get("/health").expect("health during overload");
    assert_eq!(response.status, 200);
    let response = http.get("/stats").expect("stats during overload");
    let stats = json_body(&response);
    assert!(
        stats
            .get("jobs_rejected")
            .and_then(|r| r.as_u64())
            .expect("jobs_rejected")
            >= 1
    );
    server.shutdown();
}

#[test]
fn graceful_drain_finishes_inflight_work_then_closes() {
    let server = spawn_server();
    let mut http = client(&server);
    let response = http
        .post_json("/mine", r#"{"table":"flights","k":1,"sample_size":14}"#)
        .expect("mine before drain");
    assert_eq!(response.status, 200);
    let addr = server.local_addr();
    server.shutdown();
    // After drain the port no longer serves.
    let alive = TcpStream::connect(addr).is_ok_and(|mut s| {
        let _ = s.write_all(b"GET /health HTTP/1.1\r\n\r\n");
        let mut out = String::new();
        let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = s.read_to_string(&mut out);
        !out.is_empty()
    });
    assert!(!alive, "server answered after shutdown");
}
